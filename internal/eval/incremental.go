package eval

import (
	"fmt"

	"sepdl/internal/ast"
	"sepdl/internal/budget"
	"sepdl/internal/conj"
	"sepdl/internal/database"
	"sepdl/internal/rel"
	"sepdl/internal/stats"
)

// Materialized is an incrementally maintained fixpoint: the IDB relations
// of a positive program, kept up to date as new base facts arrive. Each
// insertion is propagated semi-naively (the new fact is a delta), so
// maintenance cost is proportional to the new derivations, not to the
// database.
//
// Insertions propagate directly; deletions are handled by DeleteFact's
// delete-and-rederive (DRed) pass. Programs with negation are rejected:
// a new fact can retract negation-derived tuples.
type Materialized struct {
	prog  *ast.Program
	view  *database.Database
	total map[string]*rel.Relation
	base  map[string]*rel.Relation // EDB relations, owned by this view
	// occs maps each predicate to the (rule, body position) pairs where it
	// occurs, for delta-driven re-evaluation.
	occs  map[string][]occurrence
	rules []compiledRule
	// support holds, per IDB predicate, one derivability check per rule
	// (used by DeleteFact's re-derivation phase).
	support map[string][]*supportCheck
	col     *stats.Collector
	bud     *budget.Budget
	// broken records a budget abort that interrupted a maintenance pass
	// mid-mutation; the view is then inconsistent and refuses further use.
	broken error
}

type occurrence struct {
	rule int
	atom int
}

// Materialize evaluates prog over db once and returns a maintainable view.
// The EDB relations are deep-copied so later AddFact calls do not mutate
// the caller's database.
func Materialize(prog *ast.Program, db *database.Database, col *stats.Collector) (*Materialized, error) {
	return MaterializeBudget(prog, db, col, nil)
}

// MaterializeBudget is Materialize with a resource budget: the initial
// fixpoint and every later maintenance pass (AddFact propagation,
// DeleteFact's DRed phases) check it at round and join-inner-loop
// granularity. A budget abort during the initial fixpoint leaves the
// caller's database untouched; an abort after a maintenance pass has begun
// mutating marks the view invalid (every later call errors), since a
// half-propagated view would silently return wrong answers.
func MaterializeBudget(prog *ast.Program, db *database.Database, col *stats.Collector, bud *budget.Budget) (*Materialized, error) {
	if prog.HasNegation() {
		return nil, fmt.Errorf("eval: incremental maintenance requires a negation-free program")
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	idb := prog.IDBPreds()

	// Private copies of the EDB relations.
	view := db.ShallowView()
	base := make(map[string]*rel.Relation)
	for _, pred := range db.Preds() {
		if !idb[pred] {
			cp := db.Relation(pred).Clone()
			base[pred] = cp
			view.Set(pred, cp)
		}
	}
	// Initial fixpoint.
	fixed, err := Run(prog, view, Options{Collector: col, Budget: bud})
	if err != nil {
		return nil, err
	}
	m := &Materialized{
		prog:    prog,
		view:    fixed,
		total:   make(map[string]*rel.Relation),
		base:    base,
		occs:    make(map[string][]occurrence),
		support: make(map[string][]*supportCheck),
		col:     col,
		bud:     bud,
	}
	for p := range idb {
		m.total[p] = fixed.Relation(p)
	}
	intern := fixed.Syms.Intern
	for ri, r := range prog.Rules {
		plan, err := conj.Compile(r.Body, nil, intern)
		if err != nil {
			return nil, err
		}
		plan.SetTick(bud.TickFunc())
		proj, err := conj.NewProjector(r.Head, plan, intern)
		if err != nil {
			return nil, err
		}
		m.rules = append(m.rules, compiledRule{rule: r, plan: plan, proj: proj})
		for ai, b := range r.Body {
			m.occs[b.Pred] = append(m.occs[b.Pred], occurrence{rule: ri, atom: ai})
		}
		sc, err := newSupportCheck(r, intern)
		if err != nil {
			return nil, err
		}
		sc.plan.SetTick(bud.TickFunc())
		m.support[r.Head.Pred] = append(m.support[r.Head.Pred], sc)
	}
	return m, nil
}

// Broken reports the budget abort that invalidated the view, if any.
func (m *Materialized) Broken() error { return m.broken }

// Repair rebuilds a broken view's IDB relations from its base relations
// and clears the broken mark, restoring service after a maintenance pass
// was aborted mid-mutation. Base relations always reflect every requested
// mutation by the time a propagation abort can fire (AddFact inserts the
// base tuple before propagating; DeleteFact applies base deletions before
// re-deriving), so the rebuilt fixpoint is exactly the state the
// interrupted pass was converging to. The cumulative budget is reset first
// — the rebuild replaces all previously accounted work — and a rebuild
// that itself aborts leaves the view broken with the new error. Repairing
// an unbroken view is a no-op.
func (m *Materialized) Repair() error {
	if m.broken == nil {
		return nil
	}
	m.bud.Reset()
	base := database.NewShared(m.view.Syms)
	for p, r := range m.base {
		base.Set(p, r)
	}
	fixed, err := Run(m.prog, base, Options{Collector: m.col, Budget: m.bud})
	if err != nil {
		m.broken = fmt.Errorf("eval: view repair failed: %w", err)
		return m.broken
	}
	m.view = fixed
	for p := range m.prog.IDBPreds() {
		m.total[p] = fixed.Relation(p)
	}
	m.broken = nil
	return nil
}

// SnapshotView returns an immutable snapshot of the maintained view, or
// the broken error. Concurrent readers answer queries against snapshots so
// maintenance passes never expose half-updated relations to them.
func (m *Materialized) SnapshotView() (*database.Database, error) {
	if err := m.checkUsable(); err != nil {
		return nil, err
	}
	return m.view.Snapshot(), nil
}

// checkUsable rejects operations on a view a mid-mutation abort corrupted.
func (m *Materialized) checkUsable() error {
	if m.broken != nil {
		return fmt.Errorf("eval: view invalidated by an aborted maintenance pass: %w", m.broken)
	}
	return nil
}

// View returns the maintained database view (base copies + IDB totals).
// Callers must not mutate it directly; use AddFact.
func (m *Materialized) View() *database.Database { return m.view }

// AddFact inserts a base fact and propagates its consequences. Inserting a
// fact for an IDB predicate or an unknown arity is an error. Reports
// whether the fact was new.
func (m *Materialized) AddFact(pred string, args ...string) (bool, error) {
	if err := m.checkUsable(); err != nil {
		return false, err
	}
	if ast.Builtin(pred) {
		return false, fmt.Errorf("eval: %s is a builtin predicate", pred)
	}
	if m.total[pred] != nil {
		return false, fmt.Errorf("eval: %s is an IDB predicate; only base facts can be added", pred)
	}
	t := make(rel.Tuple, len(args))
	for i, a := range args {
		t[i] = m.view.Syms.Intern(a)
	}
	r := m.base[pred]
	if r == nil {
		// A base predicate with no prior facts: create it with the arity
		// the program expects (or this fact's arity if unmentioned).
		arities, err := m.prog.Arities()
		if err != nil {
			return false, err
		}
		want, mentioned := arities[pred]
		if mentioned && want != len(args) {
			return false, fmt.Errorf("eval: %s has arity %d in the program, got %d args", pred, want, len(args))
		}
		r = rel.New(len(args))
		m.base[pred] = r
		m.view.Set(pred, r)
	}
	if r.Arity() != len(t) {
		return false, fmt.Errorf("eval: %s has arity %d, got %d args", pred, r.Arity(), len(t))
	}
	if !r.Insert(t) {
		return false, nil
	}
	delta := rel.New(len(t))
	delta.Insert(t)
	// The base fact is in; from here an abort leaves the IDB relations
	// behind the base relations, so it poisons the view.
	if err := m.mutating(func() { m.propagate(pred, delta) }); err != nil {
		return false, err
	}
	return true, nil
}

// mutating runs a maintenance step that modifies the view, converting a
// budget abort into an error and marking the view invalid (the step may
// have been interrupted between mutations).
func (m *Materialized) mutating(f func()) error {
	err := func() (err error) {
		defer budget.Guard(&err)
		f()
		return nil
	}()
	if err != nil {
		m.broken = err
	}
	return err
}

// propagate pushes a delta for pred through every rule occurrence,
// worklist-style, until no new IDB facts appear. Totals already include
// each delta before its propagation, so derivations combining several new
// facts are found when the later delta is processed.
func (m *Materialized) propagate(pred string, delta *rel.Relation) {
	type work struct {
		pred  string
		delta *rel.Relation
	}
	queue := []work{{pred, delta}}
	for len(queue) > 0 {
		m.bud.Round()
		w := queue[0]
		queue = queue[1:]
		// One RoundSink per head predicate: emissions stream into it and
		// only tuples absent from the maintained totals materialize. The
		// totals are frozen until the fold below, so the membership check
		// is exact.
		sinks := make(map[string]*RoundSink)
		for _, oc := range m.occs[w.pred] {
			cr := &m.rules[oc.rule]
			head := cr.rule.Head.Pred
			into := sinks[head]
			if into == nil {
				into = NewRoundSink(m.total[head], false)
				sinks[head] = into
			}
			occAtom := oc.atom
			src := func(atomIdx int, p string) *rel.Relation {
				if atomIdx == occAtom {
					return w.delta
				}
				return m.view.Relation(p)
			}
			row := make(rel.Tuple, cr.proj.Arity())
			s := cr.plan.Stream(src, nil)
			for b, ok := s.Next(); ok; b, ok = s.Next() {
				into.Add(cr.proj.Tuple(b, row))
			}
		}
		var interBytes int64
		for head, sink := range sinks {
			d := sink.Delta()
			interBytes += int64(sink.IntermediateLen(d)) * int64(m.total[head].Arity()) * int64(rel.ValueBytes)
			if d.Empty() {
				continue
			}
			added := m.total[head].InsertAll(d)
			m.col.AddInserted(added)
			m.bud.AddDerived(added, m.total[head].Arity())
			m.col.Observe(head, m.total[head].Len())
			queue = append(queue, work{head, d})
		}
		m.col.ObserveIntermediate(interBytes)
		m.col.AddIteration()
	}
}

// Answer evaluates a query against the maintained view (index lookup and
// projection only — no fixpoint work).
func (m *Materialized) Answer(q ast.Atom) (*rel.Relation, error) {
	if err := m.checkUsable(); err != nil {
		return nil, err
	}
	return Answer(m.view, q)
}
