package eval

import (
	"testing"

	"sepdl/internal/ast"
	"sepdl/internal/database"
	"sepdl/internal/parser"
)

func TestBuiltinNeqSiblings(t *testing.T) {
	prog := mustProgram(t, `
sibling(X, Y) :- parent(X, P) & parent(Y, P) & neq(X, Y).
`)
	db := database.New()
	mustLoad(t, db, `parent(a, p). parent(b, p). parent(c, q).`)
	got := answerDump(t, prog, db, `sibling(X, Y)?`, Options{})
	if got != "{(a,b) (b,a)}" {
		t.Fatalf("sibling = %s", got)
	}
}

func TestBuiltinEq(t *testing.T) {
	prog := mustProgram(t, `
selfloop(X) :- edge(X, Y) & eq(X, Y).
`)
	db := database.New()
	mustLoad(t, db, `edge(a, a). edge(a, b).`)
	got := answerDump(t, prog, db, `selfloop(X)?`, Options{})
	if got != "{(a)}" {
		t.Fatalf("selfloop = %s", got)
	}
}

func TestBuiltinWithConstant(t *testing.T) {
	prog := mustProgram(t, `
other(X) :- node(X) & neq(X, hub).
`)
	db := database.New()
	mustLoad(t, db, `node(hub). node(a). node(b).`)
	got := answerDump(t, prog, db, `other(X)?`, Options{})
	if got != "{(a) (b)}" {
		t.Fatalf("other = %s", got)
	}
}

func TestBuiltinInRecursion(t *testing.T) {
	// Paths that never return to the start node.
	prog := mustProgram(t, `
away(S, Y) :- edge(S, Y) & neq(S, Y).
away(S, Y) :- away(S, X) & edge(X, Y) & neq(Y, S).
`)
	db := database.New()
	mustLoad(t, db, `edge(s, a). edge(a, b). edge(b, s). edge(b, c).`)
	got := answerDump(t, prog, db, `away(s, Y)?`, Options{})
	if got != "{(a) (b) (c)}" {
		t.Fatalf("away = %s", got)
	}
}

func TestBuiltinValidation(t *testing.T) {
	db := database.New()
	for _, src := range []string{
		`eq(X, X) :- q(X).`,             // builtin head
		`p(X) :- q(X) & neq(X).`,        // wrong arity
		`p(X) :- q(X) & not neq(X, X).`, // negated builtin
		`p(X) :- q(X) & neq(X, Y).`,     // unbound builtin variable
	} {
		r, err := parser.Rule(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		prog := &ast.Program{Rules: []ast.Rule{r}}
		if _, err := Run(prog, db, Options{}); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}
