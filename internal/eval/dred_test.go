package eval

import (
	"fmt"
	"math/rand"
	"testing"

	"sepdl/internal/database"
	"sepdl/internal/parser"
	"sepdl/internal/rel"
	"sepdl/internal/stats"
)

func pathAnswers(t *testing.T, m *Materialized, query string) string {
	t.Helper()
	q, err := parser.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := m.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	return ans.Dump(m.View().Syms)
}

func TestDeleteFactBasic(t *testing.T) {
	prog := mustProgram(t, tcProg)
	db := database.New()
	mustLoad(t, db, `edge(a, b). edge(b, c).`)
	m, err := Materialize(prog, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	present, err := m.DeleteFact("edge", "b", "c")
	if err != nil || !present {
		t.Fatalf("DeleteFact = %v, %v", present, err)
	}
	if got := pathAnswers(t, m, `path(a, Y)?`); got != "{(b)}" {
		t.Fatalf("path(a, Y) = %s", got)
	}
	// Deleting again is a no-op.
	present, err = m.DeleteFact("edge", "b", "c")
	if err != nil || present {
		t.Fatalf("double DeleteFact = %v, %v", present, err)
	}
	// Unknown constants / predicates are no-ops, not errors.
	if present, err := m.DeleteFact("edge", "zz", "qq"); err != nil || present {
		t.Fatalf("unknown-constant delete = %v, %v", present, err)
	}
	if present, err := m.DeleteFact("ghost", "x"); err != nil || present {
		t.Fatalf("unknown-pred delete = %v, %v", present, err)
	}
	if _, err := m.DeleteFact("path", "a", "b"); err == nil {
		t.Fatal("IDB delete accepted")
	}
}

func TestDeleteRederivesAlternatePath(t *testing.T) {
	// Two disjoint paths a->c; deleting one leaves path(a,c) derivable.
	prog := mustProgram(t, tcProg)
	db := database.New()
	mustLoad(t, db, `edge(a, b). edge(b, c). edge(a, c).`)
	m, err := Materialize(prog, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.DeleteFact("edge", "a", "c"); err != nil {
		t.Fatal(err)
	}
	if got := pathAnswers(t, m, `path(a, Y)?`); got != "{(b) (c)}" {
		t.Fatalf("path(a, Y) = %s (direct edge deleted, chain remains)", got)
	}
	if _, err := m.DeleteFact("edge", "a", "b"); err != nil {
		t.Fatal(err)
	}
	if got := pathAnswers(t, m, `path(a, Y)?`); got != "{}" {
		t.Fatalf("path(a, Y) = %s after both deletions", got)
	}
}

func TestDeleteOnCycle(t *testing.T) {
	// Cycles are where naive deletion goes wrong: every tuple on the cycle
	// "supports" the others. DRed must clear them all.
	prog := mustProgram(t, tcProg)
	db := database.New()
	mustLoad(t, db, `edge(a, b). edge(b, a).`)
	m, err := Materialize(prog, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.DeleteFact("edge", "b", "a"); err != nil {
		t.Fatal(err)
	}
	if got := pathAnswers(t, m, `path(X, Y)?`); got != "{(a,b)}" {
		t.Fatalf("path = %s after breaking the cycle", got)
	}
}

func TestDeleteMultiDerivationTuple(t *testing.T) {
	// A tuple derivable through two distinct rules must survive the
	// deletion of one support.
	prog := mustProgram(t, `
buys(X, Y) :- friend(X, W) & buys(W, Y).
buys(X, Y) :- idol(X, W) & buys(W, Y).
buys(X, Y) :- perfectFor(X, Y).
`)
	db := database.New()
	mustLoad(t, db, `friend(a, b). idol(a, b). perfectFor(b, g).`)
	m, err := Materialize(prog, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.DeleteFact("friend", "a", "b"); err != nil {
		t.Fatal(err)
	}
	if got := pathAnswers(t, m, `buys(a, Y)?`); got != "{(g)}" {
		t.Fatalf("buys(a, Y) = %s (idol support remains)", got)
	}
	if _, err := m.DeleteFact("idol", "a", "b"); err != nil {
		t.Fatal(err)
	}
	if got := pathAnswers(t, m, `buys(a, Y)?`); got != "{}" {
		t.Fatalf("buys(a, Y) = %s after both supports gone", got)
	}
}

// TestDeleteMatchesRecompute drives random interleaved insert/delete
// sequences and checks the maintained view against recomputation from
// scratch after every operation.
func TestDeleteMatchesRecompute(t *testing.T) {
	progs := map[string]struct {
		src   string
		edbs  []string
		idb   string
		arity int
	}{
		"tc": {tcProg, []string{"edge"}, "path", 2},
		"buys": {`
buys(X, Y) :- friend(X, W) & buys(W, Y).
buys(X, Y) :- buys(X, W) & cheaper(Y, W).
buys(X, Y) :- perfectFor(X, Y).
`, []string{"friend", "cheaper", "perfectFor"}, "buys", 2},
	}
	rng := rand.New(rand.NewSource(13))
	for name, cfg := range progs {
		t.Run(name, func(t *testing.T) {
			prog := mustProgram(t, cfg.src)
			m, err := Materialize(prog, database.New(), stats.New())
			if err != nil {
				t.Fatal(err)
			}
			shadow := database.New()
			type fact struct {
				pred, a, b string
			}
			var live []fact
			n := 5
			for step := 0; step < 80; step++ {
				if len(live) == 0 || rng.Intn(3) > 0 {
					f := fact{
						pred: cfg.edbs[rng.Intn(len(cfg.edbs))],
						a:    fmt.Sprintf("c%d", rng.Intn(n)),
						b:    fmt.Sprintf("c%d", rng.Intn(n)),
					}
					if _, err := m.AddFact(f.pred, f.a, f.b); err != nil {
						t.Fatal(err)
					}
					shadow.AddFact(f.pred, f.a, f.b)
					live = append(live, f)
				} else {
					i := rng.Intn(len(live))
					f := live[i]
					live = append(live[:i], live[i+1:]...)
					if _, err := m.DeleteFact(f.pred, f.a, f.b); err != nil {
						t.Fatal(err)
					}
					// Rebuild the shadow EDB without f (it may still be
					// present from a duplicate insert; set semantics says
					// it is simply gone).
					shadow.Relation(f.pred).Delete(toTuple(shadow, f.a, f.b))
				}
				view, err := Run(prog, shadow, Options{})
				if err != nil {
					t.Fatal(err)
				}
				got := m.View().Relation(cfg.idb)
				want := view.Relation(cfg.idb)
				if !got.Equal(want) {
					t.Fatalf("step %d: maintained %s != recomputed %s",
						step, got.Dump(m.View().Syms), want.Dump(shadow.Syms))
				}
			}
		})
	}
}

func toTuple(db *database.Database, args ...string) rel.Tuple {
	t := make(rel.Tuple, len(args))
	for i, a := range args {
		v, _ := db.Syms.Lookup(a)
		t[i] = v
	}
	return t
}
