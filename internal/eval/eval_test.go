package eval

import (
	"errors"
	"testing"

	"sepdl/internal/ast"
	"sepdl/internal/budget"
	"sepdl/internal/database"
	"sepdl/internal/parser"
	"sepdl/internal/stats"
)

func mustProgram(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := parser.Program(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustLoad(t *testing.T, db *database.Database, facts string) {
	t.Helper()
	fs, err := parser.Facts(facts)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Load(fs); err != nil {
		t.Fatal(err)
	}
}

func answerDump(t *testing.T, prog *ast.Program, db *database.Database, query string, opts Options) string {
	t.Helper()
	view, err := Run(prog, db, opts)
	if err != nil {
		t.Fatal(err)
	}
	q, err := parser.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := Answer(view, q)
	if err != nil {
		t.Fatal(err)
	}
	return ans.Dump(db.Syms)
}

const tcProg = `
path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, W) & path(W, Y).
`

func TestTransitiveClosureChain(t *testing.T) {
	db := database.New()
	mustLoad(t, db, `edge(a, b). edge(b, c). edge(c, d).`)
	got := answerDump(t, mustProgram(t, tcProg), db, `path(a, Y)?`, Options{})
	if got != "{(b) (c) (d)}" {
		t.Fatalf("answers = %s", got)
	}
}

func TestTransitiveClosureCycleTerminates(t *testing.T) {
	db := database.New()
	mustLoad(t, db, `edge(a, b). edge(b, c). edge(c, a).`)
	got := answerDump(t, mustProgram(t, tcProg), db, `path(a, Y)?`, Options{})
	if got != "{(a) (b) (c)}" {
		t.Fatalf("answers = %s", got)
	}
}

func TestNaiveMatchesSemiNaive(t *testing.T) {
	db := database.New()
	mustLoad(t, db, `edge(a, b). edge(b, c). edge(c, a). edge(c, d). edge(d, e).`)
	prog := mustProgram(t, tcProg)
	sn := answerDump(t, prog, db, `path(X, Y)?`, Options{})
	nv := answerDump(t, prog, db, `path(X, Y)?`, Options{Naive: true})
	if sn != nv {
		t.Fatalf("semi-naive %s != naive %s", sn, nv)
	}
}

func TestExample11Buys(t *testing.T) {
	prog := mustProgram(t, `
buys(X, Y) :- friend(X, W) & buys(W, Y).
buys(X, Y) :- idol(X, W) & buys(W, Y).
buys(X, Y) :- perfectFor(X, Y).
`)
	db := database.New()
	mustLoad(t, db, `
friend(tom, dick). friend(dick, harry).
idol(tom, harry).
perfectFor(harry, radio). perfectFor(dick, tv).
`)
	got := answerDump(t, prog, db, `buys(tom, Y)?`, Options{})
	if got != "{(radio) (tv)}" {
		t.Fatalf("buys(tom, Y) = %s", got)
	}
}

func TestMutualRecursion(t *testing.T) {
	// even/odd distance from a along a chain — exercises multiple IDB
	// predicates in one fixpoint.
	prog := mustProgram(t, `
even(X) :- start(X).
even(Y) :- odd(X) & edge(X, Y).
odd(Y) :- even(X) & edge(X, Y).
`)
	db := database.New()
	mustLoad(t, db, `start(a). edge(a, b). edge(b, c). edge(c, d).`)
	got := answerDump(t, prog, db, `even(X)?`, Options{})
	if got != "{(a) (c)}" {
		t.Fatalf("even = %s", got)
	}
	got = answerDump(t, prog, db, `odd(X)?`, Options{})
	if got != "{(b) (d)}" {
		t.Fatalf("odd = %s", got)
	}
}

func TestNonlinearRecursion(t *testing.T) {
	prog := mustProgram(t, `
t(X, Y) :- e(X, Y).
t(X, Y) :- t(X, W) & t(W, Y).
`)
	db := database.New()
	mustLoad(t, db, `e(a, b). e(b, c). e(c, d). e(d, e).`)
	got := answerDump(t, prog, db, `t(a, Y)?`, Options{})
	if got != "{(b) (c) (d) (e)}" {
		t.Fatalf("t(a, Y) = %s", got)
	}
}

func TestIDBInitialFacts(t *testing.T) {
	// Facts stored under the IDB predicate's own name seed the fixpoint.
	prog := mustProgram(t, `p(X) :- p(X).`)
	db := database.New()
	mustLoad(t, db, `p(a).`)
	got := answerDump(t, prog, db, `p(X)?`, Options{})
	if got != "{(a)}" {
		t.Fatalf("p = %s", got)
	}
}

func TestIterationLimit(t *testing.T) {
	db := database.New()
	mustLoad(t, db, `edge(a, b). edge(b, c). edge(c, d). edge(d, e).`)
	_, err := Run(mustProgram(t, tcProg), db, Options{MaxIterations: 2})
	if !errors.Is(err, budget.ErrBudget) {
		t.Fatalf("err = %v, want budget.ErrBudget", err)
	}
	var re *budget.ResourceError
	if !errors.As(err, &re) || re.Limit != budget.LimitRounds || re.Max != 2 {
		t.Fatalf("err = %#v, want rounds ResourceError with Max=2", err)
	}
}

func TestStatsCollected(t *testing.T) {
	db := database.New()
	mustLoad(t, db, `edge(a, b). edge(b, c). edge(c, d).`)
	c := stats.New()
	if _, err := Run(mustProgram(t, tcProg), db, Options{Collector: c}); err != nil {
		t.Fatal(err)
	}
	if c.Sizes["path"] != 6 {
		t.Fatalf("path peak size = %d, want 6 (%s)", c.Sizes["path"], c)
	}
	if c.Iterations < 3 {
		t.Fatalf("iterations = %d", c.Iterations)
	}
}

func TestRunDoesNotMutateEDB(t *testing.T) {
	db := database.New()
	mustLoad(t, db, `edge(a, b). p(a).`)
	prog := mustProgram(t, `p(Y) :- p(X) & edge(X, Y).`)
	if _, err := Run(prog, db, Options{}); err != nil {
		t.Fatal(err)
	}
	if db.Relation("p").Len() != 1 {
		t.Fatal("Run mutated the caller's p relation")
	}
}

func TestQueryVars(t *testing.T) {
	q, _ := parser.Query(`p(X, tom, Y, X)?`)
	vs := QueryVars(q)
	if len(vs) != 2 || vs[0] != "X" || vs[1] != "Y" {
		t.Fatalf("QueryVars = %v", vs)
	}
}

func TestAnswerRepeatedVariable(t *testing.T) {
	db := database.New()
	mustLoad(t, db, `e(a, a). e(a, b).`)
	prog := mustProgram(t, `p(X, Y) :- e(X, Y).`)
	got := answerDump(t, prog, db, `p(X, X)?`, Options{})
	if got != "{(a)}" {
		t.Fatalf("p(X, X) = %s", got)
	}
}

func TestAnswerGroundQuery(t *testing.T) {
	db := database.New()
	mustLoad(t, db, `e(a, b).`)
	prog := mustProgram(t, `p(X, Y) :- e(X, Y).`)
	got := answerDump(t, prog, db, `p(a, b)?`, Options{})
	if got != "{()}" {
		t.Fatalf("ground true query = %s", got)
	}
	got = answerDump(t, prog, db, `p(b, a)?`, Options{})
	if got != "{}" {
		t.Fatalf("ground false query = %s", got)
	}
}

func TestAnswerUnknownConstant(t *testing.T) {
	db := database.New()
	mustLoad(t, db, `e(a, b).`)
	prog := mustProgram(t, `p(X, Y) :- e(X, Y).`)
	got := answerDump(t, prog, db, `p(zzz, Y)?`, Options{})
	if got != "{}" {
		t.Fatalf("unknown constant query = %s", got)
	}
}

func TestAnswerMissingRelation(t *testing.T) {
	db := database.New()
	q, _ := parser.Query(`nothing(X)?`)
	ans, err := Answer(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 0 || ans.Arity() != 1 {
		t.Fatalf("missing relation answer: len=%d arity=%d", ans.Len(), ans.Arity())
	}
}

func TestAnswerArityMismatch(t *testing.T) {
	db := database.New()
	mustLoad(t, db, `e(a, b).`)
	q, _ := parser.Query(`e(X)?`)
	if _, err := Answer(db, q); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestSameGeneration(t *testing.T) {
	// The classic same-generation program on a small tree.
	prog := mustProgram(t, `
sg(X, Y) :- flat(X, Y).
sg(X, Y) :- up(X, U) & sg(U, V) & down(V, Y).
`)
	db := database.New()
	mustLoad(t, db, `
up(c1, p1). up(c2, p1). up(c3, p2).
flat(p1, p2).
down(p1, c1). down(p1, c2). down(p2, c3).
`)
	got := answerDump(t, prog, db, `sg(c1, Y)?`, Options{})
	if got != "{(c3)}" {
		t.Fatalf("sg(c1, Y) = %s", got)
	}
}
