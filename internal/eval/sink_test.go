package eval

import (
	"testing"

	"sepdl/internal/parser"
	"sepdl/internal/rel"
	"sepdl/internal/symtab"
)

func TestAnswerSinkProjection(t *testing.T) {
	syms := symtab.New()
	q, err := parser.Query(`p(tom, Y, X)?`)
	if err != nil {
		t.Fatal(err)
	}
	s := NewAnswerSink(q, syms)
	tom := syms.Intern("tom")
	a, b := syms.Intern("a"), syms.Intern("b")
	s.Add(rel.Tuple{tom, a, b}) // matches
	s.Add(rel.Tuple{a, a, b})   // wrong constant
	s.Add(rel.Tuple{tom, b, a}) // second match
	res := s.Result()
	if res.Arity() != 2 || res.Len() != 2 {
		t.Fatalf("result arity=%d len=%d", res.Arity(), res.Len())
	}
	if !res.Contains(rel.Tuple{a, b}) || !res.Contains(rel.Tuple{b, a}) {
		t.Fatalf("result = %s", res.Dump(syms))
	}
}

func TestAnswerSinkRepeatedVariable(t *testing.T) {
	syms := symtab.New()
	q, err := parser.Query(`p(X, X)?`)
	if err != nil {
		t.Fatal(err)
	}
	s := NewAnswerSink(q, syms)
	a, b := syms.Intern("a"), syms.Intern("b")
	s.Add(rel.Tuple{a, a})
	s.Add(rel.Tuple{a, b}) // repeated-var mismatch
	res := s.Result()
	if res.Len() != 1 || !res.Contains(rel.Tuple{a}) {
		t.Fatalf("result = %s", res.Dump(syms))
	}
}

func TestAnswerSinkGroundQuery(t *testing.T) {
	syms := symtab.New()
	q, err := parser.Query(`p(a, b)?`)
	if err != nil {
		t.Fatal(err)
	}
	s := NewAnswerSink(q, syms)
	a, b := syms.Intern("a"), syms.Intern("b")
	s.Add(rel.Tuple{a, b})
	s.Add(rel.Tuple{b, a})
	res := s.Result()
	if res.Arity() != 0 || res.Len() != 1 {
		t.Fatalf("ground sink: arity=%d len=%d", res.Arity(), res.Len())
	}
}
