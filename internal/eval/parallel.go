package eval

import (
	"sepdl/internal/budget"
	"sepdl/internal/conj"
	"sepdl/internal/par"
	"sepdl/internal/rel"
)

// DefaultParallelThreshold is the adaptive profit gate's break-even point:
// the estimated number of head-tuple emissions a round must produce before
// fanning out beats the plain loop. Fan-out has a fixed cost (goroutines,
// channel, per-tuple clones into merge batches), and on the small rounds
// that dominate most workloads it loses to the sequential pull loop; 4096
// estimated emissions is comfortably past break-even. The estimate is the
// round's input work (tuples feeding its joins) times the join fan-out
// observed over previous rounds, so a workload whose deltas stay small
// never pays the fan-out tax — and one whose tiny deltas explode through a
// dense join still engages the pool.
const DefaultParallelThreshold = 4096

// mergeBatchSize is how many head tuples a worker buffers before handing
// them to the merger; small enough to keep the merger streaming, large
// enough that channel traffic is not per-tuple.
const mergeBatchSize = 256

// roundTask is one unit of a round's work: evaluate a rule's plan against
// a relation source (the base source, or one with a delta chunk
// substituted at one IDB occurrence).
type roundTask struct {
	cr  *compiledRule
	src conj.RelSource
}

// parRunner is the per-stratum handle on the parallel round machinery;
// nil means the run is sequential. It carries the profit gate's state: an
// exponential moving average of the join fan-out (emissions per input
// tuple) observed over completed rounds.
type parRunner struct {
	workers   int
	threshold int
	fanout    float64
	observed  bool
}

func newParRunner(opts Options) *parRunner {
	if opts.Parallelism <= 1 {
		return nil
	}
	return &parRunner{workers: opts.Parallelism, threshold: opts.ParallelThreshold, fanout: 1}
}

// eligible reports whether a round with the given input work size should
// fan out. With threshold 0 (the default) the profit gate estimates the
// round's emissions as work × the observed fan-out EMA and engages the
// pool only past break-even. A positive threshold is the deprecated
// static floor on input size; a negative one forces fan-out (tests use it
// to drive the parallel path on tiny programs).
func (pr *parRunner) eligible(work int) bool {
	if pr == nil {
		return false
	}
	switch {
	case pr.threshold < 0:
		return true
	case pr.threshold > 0:
		return work >= pr.threshold
	}
	return float64(work)*pr.fanout >= DefaultParallelThreshold
}

// observe feeds a completed round's measured fan-out back into the gate's
// EMA. The first observation replaces the neutral prior outright; later
// ones blend 50/50, so the estimate tracks phase changes (e.g. the
// frontier reaching a dense region) within a round or two.
func (pr *parRunner) observe(work, emitted int) {
	if pr == nil || work == 0 {
		return
	}
	f := float64(emitted) / float64(work)
	if !pr.observed {
		pr.fanout, pr.observed = f, true
		return
	}
	pr.fanout = 0.5*pr.fanout + 0.5*f
}

type mergeBatch struct {
	pred string
	rows []rel.Tuple
}

// runTasks evaluates tasks on the worker pool. Workers read the round's
// immutable (total, delta, base) relations through their task sources and
// batch emitted head tuples to a single merger goroutine, which is the
// only writer of the round's sinks — so the sinks' dedup against the
// frozen totals and the growing delta needs no locking. A budget abort in
// any worker (their runners tick per candidate) or in the merger (it
// ticks per batch) re-panics here on the calling goroutine, where the
// evaluation's budget.Guard recovers it; before that the merger drains
// the channel so no worker is left blocked on send.
func (pr *parRunner) runTasks(tasks []roundTask, sinks map[string]*RoundSink, bud *budget.Budget) {
	ch := make(chan mergeBatch, pr.workers*2)
	mergeDone := make(chan any, 1)
	go func() {
		var p any
		func() {
			defer func() { p = recover() }()
			for b := range ch {
				bud.Tick()
				s := sinks[b.pred]
				for _, row := range b.rows {
					s.Add(row)
				}
			}
		}()
		if p != nil {
			for range ch {
			}
		}
		mergeDone <- p
	}()

	var workerPanic any
	func() {
		defer close(ch)
		defer func() { workerPanic = recover() }()
		par.ForEach(pr.workers, len(tasks), func(_, i int) {
			t := tasks[i]
			pred := t.cr.rule.Head.Pred
			run := t.cr.plan.NewRunner()
			row := make(rel.Tuple, t.cr.proj.Arity())
			buf := make([]rel.Tuple, 0, mergeBatchSize)
			run.Run(t.src, nil, func(binding []rel.Value) {
				buf = append(buf, t.cr.proj.Tuple(binding, row).Clone())
				if len(buf) == mergeBatchSize {
					ch <- mergeBatch{pred: pred, rows: buf}
					buf = make([]rel.Tuple, 0, mergeBatchSize)
				}
			})
			if len(buf) > 0 {
				ch <- mergeBatch{pred: pred, rows: buf}
			}
		})
	}()
	if p := <-mergeDone; p != nil && workerPanic == nil {
		workerPanic = p
	}
	if workerPanic != nil {
		panic(workerPanic)
	}
}

// baseTasks is one task per rule against the base source — the shape of
// round 0 and of naive rounds, where parallelism is across rules only.
func baseTasks(compiled []compiledRule, baseSrc conj.RelSource) []roundTask {
	tasks := make([]roundTask, 0, len(compiled))
	for i := range compiled {
		tasks = append(tasks, roundTask{cr: &compiled[i], src: baseSrc})
	}
	return tasks
}

// deltaTasks builds the semi-naive round's task list: one task per rule ×
// IDB occurrence × hash-partitioned chunk of that occurrence's delta.
// Chunk relations share tuple storage with the delta (rel.PartitionHash),
// so fan-out does not copy the frontier.
func (pr *parRunner) deltaTasks(compiled []compiledRule, delta map[string]*rel.Relation, base conj.RelSource) []roundTask {
	var tasks []roundTask
	for i := range compiled {
		cr := &compiled[i]
		if len(cr.idbOccs) == 0 {
			continue
		}
		for _, occ := range cr.idbOccs {
			occIdx := occ
			for _, part := range delta[cr.rule.Body[occ].Pred].PartitionHash(pr.workers) {
				part := part
				tasks = append(tasks, roundTask{cr: cr, src: func(atomIdx int, pred string) *rel.Relation {
					if atomIdx == occIdx {
						return part
					}
					return base(atomIdx, pred)
				}})
			}
		}
	}
	return tasks
}

// deltaWork is the semi-naive round's input size: the sum of the delta
// relations each IDB occurrence will be joined from.
func deltaWork(compiled []compiledRule, delta map[string]*rel.Relation) int {
	work := 0
	for i := range compiled {
		cr := &compiled[i]
		for _, occ := range cr.idbOccs {
			work += delta[cr.rule.Body[occ].Pred].Len()
		}
	}
	return work
}

// baseWork is the round-0 (and naive-round) input size: every rule scans
// its body relations, so the sum of their sizes across rules bounds the
// work the round's joins are driven by.
func baseWork(compiled []compiledRule, relation func(string) *rel.Relation) int {
	work := 0
	for i := range compiled {
		for _, a := range compiled[i].rule.Body {
			if r := relation(a.Pred); r != nil {
				work += r.Len()
			}
		}
	}
	return work
}
