package eval

import (
	"sepdl/internal/budget"
	"sepdl/internal/conj"
	"sepdl/internal/par"
	"sepdl/internal/rel"
)

// DefaultParallelThreshold is the round work size — tuples feeding the
// round's joins — below which a parallel-enabled evaluation still runs the
// round sequentially. Fan-out has a fixed cost (goroutines, channel, tuple
// clones), and on the small rounds that dominate most workloads it loses
// to the plain loop; 4096 input tuples is comfortably past break-even.
const DefaultParallelThreshold = 4096

// mergeBatchSize is how many head tuples a worker buffers before handing
// them to the merger; small enough to keep the merger streaming, large
// enough that channel traffic is not per-tuple.
const mergeBatchSize = 256

// roundTask is one unit of a round's work: evaluate a rule's plan against
// a relation source (the base source, or one with a delta chunk
// substituted at one IDB occurrence).
type roundTask struct {
	cr  *compiledRule
	src conj.RelSource
}

// parRunner is the per-stratum handle on the parallel round machinery;
// nil means the run is sequential.
type parRunner struct {
	workers   int
	threshold int
}

func newParRunner(opts Options) *parRunner {
	if opts.Parallelism <= 1 {
		return nil
	}
	th := opts.ParallelThreshold
	if th == 0 {
		th = DefaultParallelThreshold
	}
	return &parRunner{workers: opts.Parallelism, threshold: th}
}

// eligible reports whether a round with the given input work size should
// fan out. A negative threshold forces fan-out (tests use it to drive the
// parallel path on tiny programs).
func (pr *parRunner) eligible(work int) bool {
	if pr == nil {
		return false
	}
	return pr.threshold < 0 || work >= pr.threshold
}

type mergeBatch struct {
	pred string
	rows []rel.Tuple
}

// runTasks evaluates tasks on the worker pool. Workers read the round's
// immutable (total, delta, base) relations through their task sources and
// batch emitted head tuples to a single merger goroutine, which is the
// only writer of newFacts for the round — so dedup against the growing
// round output needs no locking. A budget abort in any worker (their
// runners tick per candidate) or in the merger (it ticks per batch)
// re-panics here on the calling goroutine, where the evaluation's
// budget.Guard recovers it; before that the merger drains the channel so
// no worker is left blocked on send.
func (pr *parRunner) runTasks(tasks []roundTask, newFacts map[string]*rel.Relation, bud *budget.Budget) {
	ch := make(chan mergeBatch, pr.workers*2)
	mergeDone := make(chan any, 1)
	go func() {
		var p any
		func() {
			defer func() { p = recover() }()
			for b := range ch {
				bud.Tick()
				nf := newFacts[b.pred]
				for _, row := range b.rows {
					nf.Insert(row)
				}
			}
		}()
		if p != nil {
			for range ch {
			}
		}
		mergeDone <- p
	}()

	var workerPanic any
	func() {
		defer close(ch)
		defer func() { workerPanic = recover() }()
		par.ForEach(pr.workers, len(tasks), func(_, i int) {
			t := tasks[i]
			pred := t.cr.rule.Head.Pred
			run := t.cr.plan.NewRunner()
			row := make(rel.Tuple, t.cr.proj.Arity())
			buf := make([]rel.Tuple, 0, mergeBatchSize)
			run.Run(t.src, nil, func(binding []rel.Value) {
				buf = append(buf, t.cr.proj.Tuple(binding, row).Clone())
				if len(buf) == mergeBatchSize {
					ch <- mergeBatch{pred: pred, rows: buf}
					buf = make([]rel.Tuple, 0, mergeBatchSize)
				}
			})
			if len(buf) > 0 {
				ch <- mergeBatch{pred: pred, rows: buf}
			}
		})
	}()
	if p := <-mergeDone; p != nil && workerPanic == nil {
		workerPanic = p
	}
	if workerPanic != nil {
		panic(workerPanic)
	}
}

// baseTasks is one task per rule against the base source — the shape of
// round 0 and of naive rounds, where parallelism is across rules only.
func baseTasks(compiled []compiledRule, baseSrc conj.RelSource) []roundTask {
	tasks := make([]roundTask, 0, len(compiled))
	for i := range compiled {
		tasks = append(tasks, roundTask{cr: &compiled[i], src: baseSrc})
	}
	return tasks
}

// deltaTasks builds the semi-naive round's task list: one task per rule ×
// IDB occurrence × hash-partitioned chunk of that occurrence's delta.
// Chunk relations share tuple storage with the delta (rel.PartitionHash),
// so fan-out does not copy the frontier.
func (pr *parRunner) deltaTasks(compiled []compiledRule, delta map[string]*rel.Relation, base conj.RelSource) []roundTask {
	var tasks []roundTask
	for i := range compiled {
		cr := &compiled[i]
		if len(cr.idbOccs) == 0 {
			continue
		}
		for _, occ := range cr.idbOccs {
			occIdx := occ
			for _, part := range delta[cr.rule.Body[occ].Pred].PartitionHash(pr.workers) {
				part := part
				tasks = append(tasks, roundTask{cr: cr, src: func(atomIdx int, pred string) *rel.Relation {
					if atomIdx == occIdx {
						return part
					}
					return base(atomIdx, pred)
				}})
			}
		}
	}
	return tasks
}

// deltaWork is the semi-naive round's input size: the sum of the delta
// relations each IDB occurrence will be joined from.
func deltaWork(compiled []compiledRule, delta map[string]*rel.Relation) int {
	work := 0
	for i := range compiled {
		cr := &compiled[i]
		for _, occ := range cr.idbOccs {
			work += delta[cr.rule.Body[occ].Pred].Len()
		}
	}
	return work
}

// baseWork is the round-0 (and naive-round) input size: every rule scans
// its body relations, so the sum of their sizes across rules bounds the
// work the round's joins are driven by.
func baseWork(compiled []compiledRule, relation func(string) *rel.Relation) int {
	work := 0
	for i := range compiled {
		for _, a := range compiled[i].rule.Body {
			if r := relation(a.Pred); r != nil {
				work += r.Len()
			}
		}
	}
	return work
}
