package eval

import (
	"sepdl/internal/ast"
	"sepdl/internal/rel"
	"sepdl/internal/symtab"
)

// AnswerSink filters full-arity tuples against a query atom (constants and
// repeated variables) and projects survivors onto the query's distinct
// variables in first-occurrence order. Strategies that assemble answers
// tuple by tuple (Separable, Counting, Henschen–Naqvi) share it.
type AnswerSink struct {
	out      *rel.Relation
	varPos   []int
	consts   []int
	constVal []rel.Value
	eqPairs  [][2]int
}

// NewAnswerSink builds a sink for query q, interning its constants in syms.
func NewAnswerSink(q ast.Atom, syms *symtab.Table) *AnswerSink {
	s := &AnswerSink{}
	first := make(map[string]int)
	for i, t := range q.Args {
		if t.IsVar() {
			if j, ok := first[t.Name]; ok {
				s.eqPairs = append(s.eqPairs, [2]int{j, i})
			} else {
				first[t.Name] = i
				s.varPos = append(s.varPos, i)
			}
		} else {
			s.consts = append(s.consts, i)
			s.constVal = append(s.constVal, syms.Intern(t.Name))
		}
	}
	s.out = rel.New(len(s.varPos))
	return s
}

// Add filters full and, if it matches the query, inserts its projection
// into the answer relation.
func (s *AnswerSink) Add(full rel.Tuple) {
	for i, p := range s.consts {
		if full[p] != s.constVal[i] {
			return
		}
	}
	for _, pq := range s.eqPairs {
		if full[pq[0]] != full[pq[1]] {
			return
		}
	}
	row := make(rel.Tuple, len(s.varPos))
	for i, p := range s.varPos {
		row[i] = full[p]
	}
	s.out.Insert(row)
}

// Result returns the accumulated answer relation.
func (s *AnswerSink) Result() *rel.Relation { return s.out }

// RoundSink is the fixpoint evaluator's sole materialization point: rule
// bodies stream their head tuples into it and only genuinely new tuples —
// absent from the stratum's growing total — are materialized into the
// round's delta. The total is frozen for the duration of a round (it is
// only extended at the round boundary, by folding the delta in), so the
// membership check is exact and the streamed delta is byte-for-byte the
// relation the old materialize-then-difference pipeline produced, in the
// same insertion order — without ever holding the round's full emission
// multiset, whose duplicates dominate peak memory on dense inputs.
//
// The materialize flag (ablation, driven by Options.MaterializeRounds and
// sepbench -stream-bench) restores the old pipeline: every emission is
// inserted into an intermediate relation and the delta is computed by
// differencing afterwards.
type RoundSink struct {
	total   *rel.Relation
	next    *rel.Relation
	all     *rel.Relation // materializing ablation: the round's raw output
	emitted int
}

// NewRoundSink starts a round's sink over the stratum total for one
// predicate. The caller must not mutate total until Delta has been folded
// in.
func NewRoundSink(total *rel.Relation, materialize bool) *RoundSink {
	s := &RoundSink{total: total, next: rel.New(total.Arity())}
	if materialize {
		s.all = rel.New(total.Arity())
	}
	return s
}

// Add streams one emitted head tuple into the round. The tuple may be a
// reused buffer; it is cloned if and when it is materialized.
func (s *RoundSink) Add(t rel.Tuple) {
	s.emitted++
	if s.all != nil {
		s.all.Insert(t)
		return
	}
	if !s.total.Contains(t) {
		s.next.Insert(t)
	}
}

// Delta returns the round's delta: the new tuples in emission order. Call
// it once, at the round boundary.
func (s *RoundSink) Delta() *rel.Relation {
	if s.all != nil {
		return s.all.Difference(s.total)
	}
	return s.next
}

// Emitted reports the raw number of head tuples streamed into the sink —
// the round's join fan-out, which feeds the parallel profit gate.
func (s *RoundSink) Emitted() int { return s.emitted }

// IntermediateLen reports how many tuples the sink materialized outside
// the totals: the streamed delta alone, or, under the ablation, the raw
// round output on top of it. It feeds the peak-intermediate-bytes metric;
// call it after Delta.
func (s *RoundSink) IntermediateLen(delta *rel.Relation) int {
	n := delta.Len()
	if s.all != nil {
		n += s.all.Len()
	}
	return n
}
