package eval

import (
	"sepdl/internal/ast"
	"sepdl/internal/rel"
	"sepdl/internal/symtab"
)

// AnswerSink filters full-arity tuples against a query atom (constants and
// repeated variables) and projects survivors onto the query's distinct
// variables in first-occurrence order. Strategies that assemble answers
// tuple by tuple (Separable, Counting, Henschen–Naqvi) share it.
type AnswerSink struct {
	out      *rel.Relation
	varPos   []int
	consts   []int
	constVal []rel.Value
	eqPairs  [][2]int
}

// NewAnswerSink builds a sink for query q, interning its constants in syms.
func NewAnswerSink(q ast.Atom, syms *symtab.Table) *AnswerSink {
	s := &AnswerSink{}
	first := make(map[string]int)
	for i, t := range q.Args {
		if t.IsVar() {
			if j, ok := first[t.Name]; ok {
				s.eqPairs = append(s.eqPairs, [2]int{j, i})
			} else {
				first[t.Name] = i
				s.varPos = append(s.varPos, i)
			}
		} else {
			s.consts = append(s.consts, i)
			s.constVal = append(s.constVal, syms.Intern(t.Name))
		}
	}
	s.out = rel.New(len(s.varPos))
	return s
}

// Add filters full and, if it matches the query, inserts its projection
// into the answer relation.
func (s *AnswerSink) Add(full rel.Tuple) {
	for i, p := range s.consts {
		if full[p] != s.constVal[i] {
			return
		}
	}
	for _, pq := range s.eqPairs {
		if full[pq[0]] != full[pq[1]] {
			return
		}
	}
	row := make(rel.Tuple, len(s.varPos))
	for i, p := range s.varPos {
		row[i] = full[p]
	}
	s.out.Insert(row)
}

// Result returns the accumulated answer relation.
func (s *AnswerSink) Result() *rel.Relation { return s.out }
