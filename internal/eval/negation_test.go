package eval

import (
	"strings"
	"testing"

	"sepdl/internal/database"
)

func TestBachelor(t *testing.T) {
	prog := mustProgram(t, `bachelor(X) :- male(X) & not married(X).`)
	db := database.New()
	mustLoad(t, db, `male(tom). male(dick). male(harry). married(dick).`)
	got := answerDump(t, prog, db, `bachelor(X)?`, Options{})
	if got != "{(harry) (tom)}" {
		t.Fatalf("bachelor = %s", got)
	}
}

func TestUnreachableTwoStrata(t *testing.T) {
	prog := mustProgram(t, `
reach(X) :- start(X).
reach(Y) :- reach(X) & edge(X, Y).
node(X) :- edge(X, Y).
node(Y) :- edge(X, Y).
unreach(X) :- node(X) & not reach(X).
`)
	db := database.New()
	mustLoad(t, db, `start(a). edge(a, b). edge(b, c). edge(d, e).`)
	got := answerDump(t, prog, db, `unreach(X)?`, Options{})
	if got != "{(d) (e)}" {
		t.Fatalf("unreach = %s", got)
	}
	// The positive side is unaffected.
	got = answerDump(t, prog, db, `reach(X)?`, Options{})
	if got != "{(a) (b) (c)}" {
		t.Fatalf("reach = %s", got)
	}
}

func TestThreeStrata(t *testing.T) {
	prog := mustProgram(t, `
a(X) :- base(X).
b(X) :- all(X) & not a(X).
c(X) :- all(X) & not b(X).
`)
	db := database.New()
	mustLoad(t, db, `base(x). all(x). all(y).`)
	if got := answerDump(t, prog, db, `b(X)?`, Options{}); got != "{(y)}" {
		t.Fatalf("b = %s", got)
	}
	if got := answerDump(t, prog, db, `c(X)?`, Options{}); got != "{(x)}" {
		t.Fatalf("c = %s", got)
	}
}

func TestNegationInsideRecursion(t *testing.T) {
	// Negating a lower-stratum IDB predicate inside a recursive rule:
	// reach avoiding blocked nodes.
	prog := mustProgram(t, `
blocked(X) :- hazard(X).
reach(X) :- start(X).
reach(Y) :- reach(X) & edge(X, Y) & not blocked(Y).
`)
	db := database.New()
	mustLoad(t, db, `
start(a).
edge(a, b). edge(b, c). edge(a, h). edge(h, d).
hazard(h).
`)
	got := answerDump(t, prog, db, `reach(X)?`, Options{})
	if got != "{(a) (b) (c)}" {
		t.Fatalf("reach = %s", got)
	}
}

func TestNonStratifiableRejected(t *testing.T) {
	prog := mustProgram(t, `win(X) :- move(X, Y) & not win(Y).`)
	db := database.New()
	mustLoad(t, db, `move(a, b).`)
	_, err := Run(prog, db, Options{})
	if err == nil || !strings.Contains(err.Error(), "not stratifiable") {
		t.Fatalf("err = %v, want stratification error", err)
	}
}

func TestNegatedEDBAtom(t *testing.T) {
	prog := mustProgram(t, `
orphanEdge(X, Y) :- edge(X, Y) & not core(X) & not core(Y).
`)
	db := database.New()
	mustLoad(t, db, `edge(a, b). edge(c, d). core(a).`)
	got := answerDump(t, prog, db, `orphanEdge(X, Y)?`, Options{})
	if got != "{(c,d)}" {
		t.Fatalf("orphanEdge = %s", got)
	}
}

func TestNegatedNullaryAtom(t *testing.T) {
	prog := mustProgram(t, `
run(X) :- job(X) & not paused.
`)
	db := database.New()
	mustLoad(t, db, `job(j1).`)
	if got := answerDump(t, prog, db, `run(X)?`, Options{}); got != "{(j1)}" {
		t.Fatalf("run = %s", got)
	}
	db2 := database.New()
	mustLoad(t, db2, `job(j1). paused.`)
	if got := answerDump(t, prog, db2, `run(X)?`, Options{}); got != "{}" {
		t.Fatalf("run with paused = %s", got)
	}
}

func TestNaiveMatchesSemiNaiveWithNegation(t *testing.T) {
	prog := mustProgram(t, `
reach(X) :- start(X).
reach(Y) :- reach(X) & edge(X, Y).
node(X) :- edge(X, Y).
node(Y) :- edge(X, Y).
unreach(X) :- node(X) & not reach(X).
`)
	db := database.New()
	mustLoad(t, db, `start(a). edge(a, b). edge(b, a). edge(c, d). edge(d, c).`)
	sn := answerDump(t, prog, db, `unreach(X)?`, Options{})
	nv := answerDump(t, prog, db, `unreach(X)?`, Options{Naive: true})
	if sn != nv {
		t.Fatalf("semi-naive %s != naive %s", sn, nv)
	}
}
