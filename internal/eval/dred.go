package eval

import (
	"fmt"

	"sepdl/internal/ast"
	"sepdl/internal/budget"
	"sepdl/internal/conj"
	"sepdl/internal/rel"
)

// supportCheck decides whether a given head tuple of one rule has a
// derivation from the current relations: the rule body evaluated with the
// head variables bound to the tuple's values.
type supportCheck struct {
	rule ast.Rule
	plan *conj.Plan
	// varOf maps each distinct head variable (in plan bound order) to its
	// first head position.
	varPos []int
	// eq lists (i, j) head position pairs that must agree (repeated head
	// variables).
	eq [][2]int
	// constPos/constVal are head constants the tuple must match.
	constPos []int
	constVal []rel.Value
}

func newSupportCheck(r ast.Rule, intern func(string) rel.Value) (*supportCheck, error) {
	sc := &supportCheck{rule: r}
	first := make(map[string]int)
	var boundVars []string
	for i, t := range r.Head.Args {
		if t.IsVar() {
			if j, ok := first[t.Name]; ok {
				sc.eq = append(sc.eq, [2]int{j, i})
			} else {
				first[t.Name] = i
				boundVars = append(boundVars, t.Name)
				sc.varPos = append(sc.varPos, i)
			}
		} else {
			sc.constPos = append(sc.constPos, i)
			sc.constVal = append(sc.constVal, intern(t.Name))
		}
	}
	plan, err := conj.Compile(r.Body, boundVars, intern)
	if err != nil {
		return nil, err
	}
	sc.plan = plan
	return sc, nil
}

// derives reports whether the rule can derive t from the relations in src.
// Pulling from the plan's stream lets it stop at the first witness instead
// of enumerating every derivation the way the old push evaluator had to.
func (sc *supportCheck) derives(src conj.RelSource, t rel.Tuple) bool {
	for i, p := range sc.constPos {
		if t[p] != sc.constVal[i] {
			return false
		}
	}
	for _, pq := range sc.eq {
		if t[pq[0]] != t[pq[1]] {
			return false
		}
	}
	in := make([]rel.Value, len(sc.varPos))
	for i, p := range sc.varPos {
		in[i] = t[p]
	}
	_, found := sc.plan.Stream(src, in).Next()
	return found
}

// DeleteFact removes a base fact and maintains the IDB relations with
// delete-and-rederive (DRed): first every tuple whose known derivations
// may involve the deleted fact is over-deleted, then tuples with an
// alternative derivation from the remaining data are re-derived. Reports
// whether the fact was present.
func (m *Materialized) DeleteFact(pred string, args ...string) (bool, error) {
	if err := m.checkUsable(); err != nil {
		return false, err
	}
	if ast.Builtin(pred) {
		return false, fmt.Errorf("eval: %s is a builtin predicate", pred)
	}
	if m.total[pred] != nil {
		return false, fmt.Errorf("eval: %s is an IDB predicate; only base facts can be deleted", pred)
	}
	base := m.base[pred]
	if base == nil {
		return false, nil
	}
	t := make(rel.Tuple, len(args))
	for i, a := range args {
		v, ok := m.view.Syms.Lookup(a)
		if !ok {
			return false, nil
		}
		t[i] = v
	}
	if len(t) != base.Arity() || !base.Contains(t) {
		return false, nil
	}

	// Phase 1: over-deletion, against the PRE-delete state (the base fact
	// and marked IDB tuples stay visible to the other body atoms until
	// marking finishes, so derivations using several doomed tuples are
	// still found). Marking mutates nothing, so a budget abort here leaves
	// the view fully consistent.
	marked := make(map[string]*rel.Relation)
	type work struct {
		pred  string
		delta *rel.Relation
	}
	if err := func() (err error) {
		defer budget.Guard(&err)
		seedDelta := rel.New(len(t))
		seedDelta.Insert(t)
		queue := []work{{pred, seedDelta}}
		for len(queue) > 0 {
			m.bud.Round()
			w := queue[0]
			queue = queue[1:]
			for _, oc := range m.occs[w.pred] {
				cr := &m.rules[oc.rule]
				if cr.rule.Body[oc.atom].Negated {
					continue // negation-free programs only (checked at Materialize)
				}
				head := cr.rule.Head.Pred
				occAtom := oc.atom
				src := func(atomIdx int, p string) *rel.Relation {
					if atomIdx == occAtom {
						return w.delta
					}
					return m.view.Relation(p)
				}
				newMarks := rel.New(cr.proj.Arity())
				row := make(rel.Tuple, cr.proj.Arity())
				s := cr.plan.Stream(src, nil)
				// sepvet:ignore:budgetcheck — the pull loop ticks per candidate inside Stream.Next (the plan's tick hook is m.bud.TickFunc), and the enclosing worklist round calls m.bud.Round
				for b, ok := s.Next(); ok; b, ok = s.Next() {
					h := cr.proj.Tuple(b, row)
					if !m.total[head].Contains(h) {
						continue
					}
					if mk := marked[head]; mk != nil && mk.Contains(h) {
						continue
					}
					if marked[head] == nil {
						marked[head] = rel.New(len(h))
					}
					marked[head].Insert(h)
					newMarks.Insert(h)
				}
				if !newMarks.Empty() {
					queue = append(queue, work{head, newMarks})
				}
			}
			m.col.AddIteration()
		}
		return nil
	}(); err != nil {
		return false, err
	}

	// Phases 2 and 3 mutate the view, so from here a budget abort marks it
	// invalid (see mutating).
	err := m.mutating(func() {
		// Phase 2: apply the deletions.
		base.Delete(t)
		for p, mk := range marked {
			for _, row := range mk.Rows() {
				m.total[p].Delete(row)
			}
			m.col.Observe(p, m.total[p].Len())
		}

		// Phase 3: re-derive over-deleted tuples that still have a
		// derivation from the remaining data; each re-insertion propagates
		// like a normal insertion, which re-derives anything downstream of
		// it (including other marked tuples).
		// Directly re-derivable tuples are batched into one delta per
		// predicate; the insertion propagation then re-derives everything
		// downstream (including marked tuples that only became derivable
		// again through these).
		src := func(_ int, p string) *rel.Relation { return m.view.Relation(p) }
		for p, mk := range marked {
			redelta := rel.New(m.total[p].Arity())
			for _, row := range mk.Rows() {
				if m.total[p].Contains(row) {
					continue // already re-derived via an earlier propagation
				}
				for _, sc := range m.support[p] {
					if sc.derives(src, row) {
						m.total[p].Insert(row)
						redelta.Insert(row)
						// Re-derivation is real maintenance work: without
						// this the churn of an over-delete/re-derive pass
						// would be invisible to the tuple and byte budgets.
						m.col.AddInserted(1)
						m.bud.AddDerived(1, len(row))
						break
					}
				}
			}
			if !redelta.Empty() {
				m.propagate(p, redelta)
			}
			m.col.Observe(p, m.total[p].Len())
		}
	})
	if err != nil {
		return false, err
	}
	return true, nil
}
