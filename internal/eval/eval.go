// Package eval implements bottom-up fixpoint evaluation of Datalog
// programs: the standard semi-naive algorithm (the engine underneath the
// Magic Sets and Counting strategies) and plain naive iteration (kept as an
// ablation baseline).
package eval

import (
	"fmt"

	"sepdl/internal/ast"
	"sepdl/internal/budget"
	"sepdl/internal/conj"
	"sepdl/internal/database"
	"sepdl/internal/rel"
	"sepdl/internal/stats"
)

// Options configure a fixpoint run.
type Options struct {
	// Collector, when non-nil, receives per-round relation sizes.
	Collector *stats.Collector
	// MaxIterations bounds the number of fixpoint rounds; 0 means no bound.
	// Exceeding the bound yields a *budget.ResourceError (used to cut off
	// divergent methods; distinguish it from malformed-program errors with
	// errors.Is(err, budget.ErrBudget)).
	MaxIterations int
	// Naive forces full recomputation each round instead of semi-naive
	// deltas (ablation).
	Naive bool
	// Budget, when non-nil, is checked at every fixpoint round and at
	// join-inner-loop granularity; exceeding it aborts the run with a
	// *budget.ResourceError and leaves db untouched.
	Budget *budget.Budget
	// Parallelism sets the worker-pool size used to evaluate a round's
	// rules — and hash-partitioned chunks of the delta frontier —
	// concurrently. 0 or 1 evaluates sequentially. The answer set is
	// identical either way; only the insertion order of derived tuples
	// (and hence unsorted Rows order) can differ.
	Parallelism int
	// ParallelThreshold is the minimum round input size (tuples feeding
	// the round's joins) at which the worker pool engages; smaller rounds
	// run sequentially even with Parallelism > 1. 0 means
	// DefaultParallelThreshold; negative removes the floor entirely
	// (tests use this to force the parallel path on tiny programs).
	ParallelThreshold int
}

type compiledRule struct {
	rule    ast.Rule
	plan    *conj.Plan
	proj    *conj.Projector
	idbOccs []int // body atom indexes whose predicate is IDB
}

// Run evaluates prog to fixpoint over db and returns a database view that
// shares db's EDB relations and adds one relation per IDB predicate. db is
// not modified. Facts already present in db under an IDB predicate's name
// are treated as initial facts of that predicate.
//
// Programs with negated body atoms are evaluated under the stratified
// semantics: Run computes a stratification (an error if none exists) and
// runs one semi-naive fixpoint per stratum, treating lower strata as
// completed base relations.
func Run(prog *ast.Program, db *database.Database, opts Options) (_ *database.Database, err error) {
	defer budget.Guard(&err)
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	arities, err := prog.Arities()
	if err != nil {
		return nil, err
	}
	strata, err := prog.Stratify()
	if err != nil {
		return nil, err
	}
	idb := prog.IDBPreds()

	view := db.ShallowView()
	total := make(map[string]*rel.Relation)
	for p := range idb {
		t := rel.New(arities[p])
		if existing := db.Relation(p); existing != nil {
			t.InsertAll(existing)
		}
		total[p] = t
		view.Set(p, t)
	}

	for _, stratum := range strata {
		inStratum := make(map[string]bool, len(stratum))
		for _, p := range stratum {
			inStratum[p] = true
		}
		var rules []ast.Rule
		for _, r := range prog.Rules {
			if inStratum[r.Head.Pred] {
				rules = append(rules, r)
			}
		}
		if err := runStratum(rules, inStratum, view, total, opts); err != nil {
			return nil, err
		}
	}
	return view, nil
}

// runStratum runs one semi-naive fixpoint over the given rules. inStratum
// names the predicates being computed; IDB predicates of lower strata are
// already complete in view and act as base relations (their occurrences
// never read deltas).
func runStratum(rules []ast.Rule, inStratum map[string]bool, view *database.Database, total map[string]*rel.Relation, opts Options) error {
	intern := view.Syms.Intern
	delta := make(map[string]*rel.Relation)
	for p := range inStratum {
		delta[p] = rel.New(total[p].Arity())
	}

	compiled := make([]compiledRule, 0, len(rules))
	for _, r := range rules {
		plan, err := conj.Compile(r.Body, nil, intern)
		if err != nil {
			return fmt.Errorf("eval: rule %s: %w", r, err)
		}
		proj, err := conj.NewProjector(r.Head, plan, intern)
		if err != nil {
			return fmt.Errorf("eval: rule %s: %w", r, err)
		}
		plan.SetTick(opts.Budget.TickFunc())
		cr := compiledRule{rule: r, plan: plan, proj: proj}
		for i, a := range r.Body {
			if inStratum[a.Pred] && !a.Negated {
				cr.idbOccs = append(cr.idbOccs, i)
			}
		}
		compiled = append(compiled, cr)
	}

	baseSrc := conj.DBSource(view.Relation)

	runRule := func(cr *compiledRule, src conj.RelSource, into *rel.Relation) {
		row := make(rel.Tuple, cr.proj.Arity())
		cr.plan.Run(src, nil, func(binding []rel.Value) {
			into.Insert(cr.proj.Tuple(binding, row))
		})
	}

	observe := func() {
		for p := range inStratum {
			opts.Collector.Observe(p, total[p].Len())
		}
	}

	pr := newParRunner(opts)

	// Round 0: evaluate every rule against the initial totals.
	opts.Budget.Round()
	newFacts := make(map[string]*rel.Relation)
	for p := range inStratum {
		newFacts[p] = rel.New(total[p].Arity())
	}
	if pr.eligible(baseWork(compiled, view.Relation)) {
		pr.runTasks(baseTasks(compiled, baseSrc), newFacts, opts.Budget)
	} else {
		for i := range compiled {
			runRule(&compiled[i], baseSrc, newFacts[compiled[i].rule.Head.Pred])
		}
	}
	opts.Collector.AddIteration()
	changed := false
	for p, nf := range newFacts {
		d := nf.Difference(total[p])
		delta[p] = d
		added := total[p].InsertAll(d)
		opts.Collector.AddInserted(added)
		opts.Budget.AddDerived(added, total[p].Arity())
		if added > 0 {
			changed = true
		}
	}
	observe()

	round := 1
	for changed {
		if opts.MaxIterations > 0 && round >= opts.MaxIterations {
			return budget.RoundsExceeded(opts.Budget.Strategy(), round, opts.MaxIterations)
		}
		round++
		opts.Budget.Round()
		opts.Collector.AddIteration()
		for p := range inStratum {
			newFacts[p] = rel.New(total[p].Arity())
		}
		switch {
		case opts.Naive && pr.eligible(baseWork(compiled, view.Relation)):
			pr.runTasks(baseTasks(compiled, baseSrc), newFacts, opts.Budget)
		case opts.Naive:
			for i := range compiled {
				runRule(&compiled[i], baseSrc, newFacts[compiled[i].rule.Head.Pred])
			}
		case pr.eligible(deltaWork(compiled, delta)):
			pr.runTasks(pr.deltaTasks(compiled, delta, baseSrc), newFacts, opts.Budget)
		default:
			for i := range compiled {
				cr := &compiled[i]
				if len(cr.idbOccs) == 0 {
					continue // exit rules cannot produce new facts after round 0
				}
				for _, occ := range cr.idbOccs {
					occIdx := occ
					src := func(atomIdx int, pred string) *rel.Relation {
						if atomIdx == occIdx {
							return delta[pred]
						}
						return view.Relation(pred)
					}
					runRule(cr, src, newFacts[cr.rule.Head.Pred])
				}
			}
		}
		changed = false
		for p, nf := range newFacts {
			d := nf.Difference(total[p])
			delta[p] = d
			added := total[p].InsertAll(d)
			opts.Collector.AddInserted(added)
			opts.Budget.AddDerived(added, total[p].Arity())
			if added > 0 {
				changed = true
			}
		}
		observe()
	}
	return nil
}

// QueryVars returns the distinct variables of q in order of first
// occurrence; these are the columns of the answer relation.
func QueryVars(q ast.Atom) []string {
	seen := make(map[string]bool)
	var out []string
	for _, t := range q.Args {
		if t.IsVar() && !seen[t.Name] {
			seen[t.Name] = true
			out = append(out, t.Name)
		}
	}
	return out
}

// Answer selects the tuples of q.Pred matching q's constants (and repeated
// variables) from db and projects them onto q's distinct variables, in
// first-occurrence order. A missing relation yields an empty answer.
func Answer(db *database.Database, q ast.Atom) (*rel.Relation, error) {
	vars := QueryVars(q)
	out := rel.New(len(vars))
	r := db.Relation(q.Pred)
	if r == nil {
		return out, nil
	}
	if r.Arity() != len(q.Args) {
		return nil, fmt.Errorf("eval: query %s has arity %d, relation has %d", q, len(q.Args), r.Arity())
	}
	varPos := make(map[string]int) // var -> first column position
	var constCols []int
	var constVals []rel.Value
	for i, t := range q.Args {
		if t.IsVar() {
			if _, ok := varPos[t.Name]; !ok {
				varPos[t.Name] = i
			}
			continue
		}
		v, ok := db.Syms.Lookup(t.Name)
		if !ok {
			return out, nil // constant absent from the database: no matches
		}
		constCols = append(constCols, i)
		constVals = append(constVals, v)
	}
	candidates := r.Rows()
	if len(constCols) > 0 {
		candidates = r.Index(constCols).Lookup(constVals)
	}
	row := make(rel.Tuple, len(vars))
next:
	for _, t := range candidates {
		for i, arg := range q.Args {
			if arg.IsVar() && t[varPos[arg.Name]] != t[i] {
				continue next // repeated query variable mismatch
			}
		}
		for j, v := range vars {
			row[j] = t[varPos[v]]
		}
		out.Insert(row)
	}
	return out, nil
}
