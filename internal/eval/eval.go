// Package eval implements bottom-up fixpoint evaluation of Datalog
// programs: the standard semi-naive algorithm (the engine underneath the
// Magic Sets and Counting strategies) and plain naive iteration (kept as an
// ablation baseline).
package eval

import (
	"fmt"

	"sepdl/internal/ast"
	"sepdl/internal/budget"
	"sepdl/internal/conj"
	"sepdl/internal/database"
	"sepdl/internal/rel"
	"sepdl/internal/stats"
)

// Options configure a fixpoint run.
type Options struct {
	// Collector, when non-nil, receives per-round relation sizes.
	Collector *stats.Collector
	// MaxIterations bounds the number of fixpoint rounds; 0 means no bound.
	// Exceeding the bound yields a *budget.ResourceError (used to cut off
	// divergent methods; distinguish it from malformed-program errors with
	// errors.Is(err, budget.ErrBudget)).
	MaxIterations int
	// Naive forces full recomputation each round instead of semi-naive
	// deltas (ablation).
	Naive bool
	// Budget, when non-nil, is checked at every fixpoint round and at
	// join-inner-loop granularity; exceeding it aborts the run with a
	// *budget.ResourceError and leaves db untouched.
	Budget *budget.Budget
	// Parallelism sets the worker-pool size used to evaluate a round's
	// rules — and hash-partitioned chunks of the delta frontier —
	// concurrently. 0 or 1 evaluates sequentially. The answer set is
	// identical either way; only the insertion order of derived tuples
	// (and hence unsorted Rows order) can differ.
	Parallelism int
	// ParallelThreshold overrides the parallel profit gate. 0 (the
	// default) gates each round adaptively: fan out only when the round's
	// estimated emissions — input work × the observed join fan-out — reach
	// DefaultParallelThreshold, the measured break-even for the fan-out
	// machinery. A positive value is the deprecated static floor on round
	// input size (kept as a manual override for workloads the estimator
	// misjudges); negative removes the gate entirely (tests use this to
	// force the parallel path on tiny programs).
	ParallelThreshold int
	// MaterializeRounds restores the pre-streaming round pipeline as an
	// ablation: every rule emission is materialized into an intermediate
	// round relation and the delta is computed by differencing against the
	// totals afterwards, instead of streaming emissions through a
	// RoundSink that materializes new tuples only. The answer is
	// identical; sepbench -stream-bench uses this to measure what
	// streaming buys.
	MaterializeRounds bool
}

type compiledRule struct {
	rule    ast.Rule
	plan    *conj.Plan
	proj    *conj.Projector
	idbOccs []int // body atom indexes whose predicate is IDB

	// runner and row are the sequential evaluator's reusable scratch: one
	// pull-stream runner and one projected-head buffer per rule, reused
	// across every round of the stratum. Parallel workers build their own.
	runner *conj.Runner
	row    rel.Tuple
}

// Run evaluates prog to fixpoint over db and returns a database view that
// shares db's EDB relations and adds one relation per IDB predicate. db is
// not modified. Facts already present in db under an IDB predicate's name
// are treated as initial facts of that predicate.
//
// Programs with negated body atoms are evaluated under the stratified
// semantics: Run computes a stratification (an error if none exists) and
// runs one semi-naive fixpoint per stratum, treating lower strata as
// completed base relations.
func Run(prog *ast.Program, db *database.Database, opts Options) (_ *database.Database, err error) {
	defer budget.Guard(&err)
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	arities, err := prog.Arities()
	if err != nil {
		return nil, err
	}
	strata, err := prog.Stratify()
	if err != nil {
		return nil, err
	}
	idb := prog.IDBPreds()

	view := db.ShallowView()
	total := make(map[string]*rel.Relation)
	for p := range idb {
		t := rel.New(arities[p])
		if existing := db.Relation(p); existing != nil {
			t.InsertAll(existing)
		}
		total[p] = t
		view.Set(p, t)
	}

	for _, stratum := range strata {
		inStratum := make(map[string]bool, len(stratum))
		for _, p := range stratum {
			inStratum[p] = true
		}
		var rules []ast.Rule
		for _, r := range prog.Rules {
			if inStratum[r.Head.Pred] {
				rules = append(rules, r)
			}
		}
		if err := runStratum(rules, inStratum, view, total, opts); err != nil {
			return nil, err
		}
	}
	return view, nil
}

// runStratum runs one semi-naive fixpoint over the given rules. inStratum
// names the predicates being computed; IDB predicates of lower strata are
// already complete in view and act as base relations (their occurrences
// never read deltas).
func runStratum(rules []ast.Rule, inStratum map[string]bool, view *database.Database, total map[string]*rel.Relation, opts Options) error {
	intern := view.Syms.Intern
	delta := make(map[string]*rel.Relation)
	for p := range inStratum {
		delta[p] = rel.New(total[p].Arity())
	}

	compiled := make([]compiledRule, 0, len(rules))
	for _, r := range rules {
		plan, err := conj.Compile(r.Body, nil, intern)
		if err != nil {
			return fmt.Errorf("eval: rule %s: %w", r, err)
		}
		proj, err := conj.NewProjector(r.Head, plan, intern)
		if err != nil {
			return fmt.Errorf("eval: rule %s: %w", r, err)
		}
		plan.SetTick(opts.Budget.TickFunc())
		cr := compiledRule{rule: r, plan: plan, proj: proj}
		cr.runner = plan.NewRunner()
		cr.row = make(rel.Tuple, proj.Arity())
		for i, a := range r.Body {
			if inStratum[a.Pred] && !a.Negated {
				cr.idbOccs = append(cr.idbOccs, i)
			}
		}
		compiled = append(compiled, cr)
	}

	baseSrc := conj.DBSource(view.Relation)

	// runRule pulls the rule's satisfying bindings one at a time and
	// streams each projected head straight into the round sink — nothing
	// between the body's index scans and the sink is materialized.
	runRule := func(cr *compiledRule, src conj.RelSource, into *RoundSink) {
		s := cr.runner.Stream(src, nil)
		for b, ok := s.Next(); ok; b, ok = s.Next() {
			into.Add(cr.proj.Tuple(b, cr.row))
		}
	}

	pr := newParRunner(opts)
	sinks := make(map[string]*RoundSink, len(inStratum))

	startRound := func() {
		for p := range inStratum {
			sinks[p] = NewRoundSink(total[p], opts.MaterializeRounds)
		}
	}

	// finishRound is the round boundary: fold each sink's delta into the
	// stratum totals, account for the work, and feed the round's observed
	// fan-out back into the parallel profit gate.
	finishRound := func(work int) bool {
		changed := false
		emitted := 0
		var interBytes int64
		for p, s := range sinks {
			d := s.Delta()
			delta[p] = d
			added := total[p].InsertAll(d)
			opts.Collector.AddInserted(added)
			opts.Budget.AddDerived(added, total[p].Arity())
			emitted += s.Emitted()
			interBytes += int64(s.IntermediateLen(d)) * int64(total[p].Arity()) * int64(rel.ValueBytes)
			if added > 0 {
				changed = true
			}
		}
		pr.observe(work, emitted)
		opts.Collector.ObserveIntermediate(interBytes)
		for p := range inStratum {
			opts.Collector.Observe(p, total[p].Len())
		}
		return changed
	}

	// Round 0: evaluate every rule against the initial totals.
	opts.Budget.Round()
	startRound()
	work := baseWork(compiled, view.Relation)
	if pr.eligible(work) {
		pr.runTasks(baseTasks(compiled, baseSrc), sinks, opts.Budget)
	} else {
		for i := range compiled {
			runRule(&compiled[i], baseSrc, sinks[compiled[i].rule.Head.Pred])
		}
	}
	opts.Collector.AddIteration()
	changed := finishRound(work)

	round := 1
	for changed {
		if opts.MaxIterations > 0 && round >= opts.MaxIterations {
			return budget.RoundsExceeded(opts.Budget.Strategy(), round, opts.MaxIterations)
		}
		round++
		opts.Budget.Round()
		opts.Collector.AddIteration()
		startRound()
		if opts.Naive {
			work = baseWork(compiled, view.Relation)
		} else {
			work = deltaWork(compiled, delta)
		}
		switch {
		case opts.Naive && pr.eligible(work):
			pr.runTasks(baseTasks(compiled, baseSrc), sinks, opts.Budget)
		case opts.Naive:
			for i := range compiled {
				runRule(&compiled[i], baseSrc, sinks[compiled[i].rule.Head.Pred])
			}
		case pr.eligible(work):
			pr.runTasks(pr.deltaTasks(compiled, delta, baseSrc), sinks, opts.Budget)
		default:
			for i := range compiled {
				cr := &compiled[i]
				if len(cr.idbOccs) == 0 {
					continue // exit rules cannot produce new facts after round 0
				}
				for _, occ := range cr.idbOccs {
					occIdx := occ
					src := func(atomIdx int, pred string) *rel.Relation {
						if atomIdx == occIdx {
							return delta[pred]
						}
						return view.Relation(pred)
					}
					runRule(cr, src, sinks[cr.rule.Head.Pred])
				}
			}
		}
		changed = finishRound(work)
	}
	return nil
}

// QueryVars returns the distinct variables of q in order of first
// occurrence; these are the columns of the answer relation.
func QueryVars(q ast.Atom) []string {
	seen := make(map[string]bool)
	var out []string
	for _, t := range q.Args {
		if t.IsVar() && !seen[t.Name] {
			seen[t.Name] = true
			out = append(out, t.Name)
		}
	}
	return out
}

// Answer selects the tuples of q.Pred matching q's constants (and repeated
// variables) from db and projects them onto q's distinct variables, in
// first-occurrence order. A missing relation yields an empty answer.
func Answer(db *database.Database, q ast.Atom) (*rel.Relation, error) {
	vars := QueryVars(q)
	out := rel.New(len(vars))
	r := db.Relation(q.Pred)
	if r == nil {
		return out, nil
	}
	if r.Arity() != len(q.Args) {
		return nil, fmt.Errorf("eval: query %s has arity %d, relation has %d", q, len(q.Args), r.Arity())
	}
	varPos := make(map[string]int) // var -> first column position
	var constCols []int
	var constVals []rel.Value
	for i, t := range q.Args {
		if t.IsVar() {
			if _, ok := varPos[t.Name]; !ok {
				varPos[t.Name] = i
			}
			continue
		}
		v, ok := db.Syms.Lookup(t.Name)
		if !ok {
			return out, nil // constant absent from the database: no matches
		}
		constCols = append(constCols, i)
		constVals = append(constVals, v)
	}
	candidates := r.Rows()
	if len(constCols) > 0 {
		candidates = r.Index(constCols).Lookup(constVals)
	}
	row := make(rel.Tuple, len(vars))
next:
	for _, t := range candidates {
		for i, arg := range q.Args {
			if arg.IsVar() && t[varPos[arg.Name]] != t[i] {
				continue next // repeated query variable mismatch
			}
		}
		for j, v := range vars {
			row[j] = t[varPos[v]]
		}
		out.Insert(row)
	}
	return out, nil
}
