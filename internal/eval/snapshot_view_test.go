package eval

import (
	"testing"

	"sepdl/internal/database"
	"sepdl/internal/parser"
)

func TestSnapshotViewFrozenAcrossMaintenance(t *testing.T) {
	prog, err := parser.Program(`
path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, Z) & path(Z, Y).
`)
	if err != nil {
		t.Fatal(err)
	}
	db := database.New()
	fs, err := parser.Facts("edge(a, b).\nedge(b, c).\n")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Load(fs); err != nil {
		t.Fatal(err)
	}
	m, err := Materialize(prog, db, nil)
	if err != nil {
		t.Fatal(err)
	}

	snap, err := m.SnapshotView()
	if err != nil {
		t.Fatal(err)
	}
	q, err := parser.Query("path(a, Y)?")
	if err != nil {
		t.Fatal(err)
	}
	ans, err := Answer(snap, q)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 2 {
		t.Fatalf("path(a, Y) on snapshot = %d answers, want 2", ans.Len())
	}

	// Maintenance after the snapshot: the live view changes, the snapshot
	// does not.
	if _, err := m.AddFact("edge", "c", "d"); err != nil {
		t.Fatal(err)
	}
	ans, err = Answer(snap, q)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 2 {
		t.Fatalf("snapshot observed maintenance: %d answers, want 2", ans.Len())
	}
	live, err := m.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if live.Len() != 3 {
		t.Fatalf("live view = %d answers, want 3", live.Len())
	}
}
