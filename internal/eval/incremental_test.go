package eval

import (
	"fmt"
	"math/rand"
	"testing"

	"sepdl/internal/database"
	"sepdl/internal/parser"
	"sepdl/internal/stats"
)

func TestMaterializeInitialFixpoint(t *testing.T) {
	prog := mustProgram(t, tcProg)
	db := database.New()
	mustLoad(t, db, `edge(a, b). edge(b, c).`)
	m, err := Materialize(prog, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.View().Relation("path").Len() != 3 {
		t.Fatalf("initial path = %s", m.View().Relation("path").Dump(db.Syms))
	}
}

func TestIncrementalInsertPropagates(t *testing.T) {
	prog := mustProgram(t, tcProg)
	db := database.New()
	mustLoad(t, db, `edge(a, b).`)
	m, err := Materialize(prog, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Linking b->c must derive path(b,c) and path(a,c).
	added, err := m.AddFact("edge", "b", "c")
	if err != nil || !added {
		t.Fatalf("AddFact = %v, %v", added, err)
	}
	q, _ := parser.Query(`path(a, Y)?`)
	ans, err := m.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if got := ans.Dump(db.Syms); got != "{(b) (c)}" {
		t.Fatalf("path(a, Y) = %s", got)
	}
	// Duplicate insert is a no-op.
	added, err = m.AddFact("edge", "b", "c")
	if err != nil || added {
		t.Fatalf("duplicate AddFact = %v, %v", added, err)
	}
}

func TestIncrementalBridgeJoinsComponents(t *testing.T) {
	// Two chains; the inserted bridge must produce all cross products.
	prog := mustProgram(t, tcProg)
	db := database.New()
	mustLoad(t, db, `edge(a1, a2). edge(a2, a3). edge(b1, b2). edge(b2, b3).`)
	m, err := Materialize(prog, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddFact("edge", "a3", "b1"); err != nil {
		t.Fatal(err)
	}
	q, _ := parser.Query(`path(a1, Y)?`)
	ans, err := m.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 5 { // a2 a3 b1 b2 b3
		t.Fatalf("path(a1, Y) = %s", ans.Dump(db.Syms))
	}
}

func TestIncrementalDoesNotMutateCaller(t *testing.T) {
	prog := mustProgram(t, tcProg)
	db := database.New()
	mustLoad(t, db, `edge(a, b).`)
	m, err := Materialize(prog, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.AddFact("edge", "b", "c")
	if db.Relation("edge").Len() != 1 {
		t.Fatal("AddFact mutated the caller's database")
	}
}

func TestIncrementalRejectsNegationAndIDBFacts(t *testing.T) {
	neg := mustProgram(t, `p(X) :- q(X) & not r(X).`)
	if _, err := Materialize(neg, database.New(), nil); err == nil {
		t.Fatal("negation accepted")
	}
	prog := mustProgram(t, tcProg)
	db := database.New()
	mustLoad(t, db, `edge(a, b).`)
	m, err := Materialize(prog, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddFact("path", "a", "b"); err == nil {
		t.Fatal("IDB fact accepted")
	}
	if _, err := m.AddFact("edge", "only-one"); err == nil {
		t.Fatal("wrong arity accepted")
	}
}

func TestIncrementalNewBasePredicate(t *testing.T) {
	// A base predicate that had no facts at Materialize time.
	prog := mustProgram(t, `
buys(X, Y) :- friend(X, W) & buys(W, Y).
buys(X, Y) :- perfectFor(X, Y).
`)
	db := database.New()
	mustLoad(t, db, `friend(a, b).`)
	m, err := Materialize(prog, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddFact("perfectFor", "b", "g"); err != nil {
		t.Fatal(err)
	}
	q, _ := parser.Query(`buys(a, Y)?`)
	ans, err := m.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if got := ans.Dump(db.Syms); got != "{(g)}" {
		t.Fatalf("buys(a, Y) = %s", got)
	}
	// Arity mismatch with the program is caught even for fresh predicates.
	if _, err := m.AddFact("friend", "too", "many", "args"); err == nil {
		t.Fatal("wrong arity for fresh base predicate accepted")
	}
}

// TestIncrementalMatchesRecompute drives random insert sequences through
// both the incremental view and a from-scratch recomputation, on two
// programs, and requires identical IDB relations after every insertion.
func TestIncrementalMatchesRecompute(t *testing.T) {
	progs := map[string]string{
		"tc": tcProg,
		"buys2class": `
buys(X, Y) :- friend(X, W) & buys(W, Y).
buys(X, Y) :- buys(X, W) & cheaper(Y, W).
buys(X, Y) :- perfectFor(X, Y).
`,
	}
	preds := map[string][][2]string{
		"tc":         {{"edge", "2"}},
		"buys2class": {{"friend", "2"}, {"cheaper", "2"}, {"perfectFor", "2"}},
	}
	idbOf := map[string]string{"tc": "path", "buys2class": "buys"}

	rng := rand.New(rand.NewSource(3))
	for name, src := range progs {
		t.Run(name, func(t *testing.T) {
			prog := mustProgram(t, src)
			db := database.New()
			m, err := Materialize(prog, db, stats.New())
			if err != nil {
				t.Fatal(err)
			}
			shadow := database.New()
			n := 6
			for step := 0; step < 60; step++ {
				p := preds[name][rng.Intn(len(preds[name]))]
				a := fmt.Sprintf("c%d", rng.Intn(n))
				b := fmt.Sprintf("c%d", rng.Intn(n))
				if _, err := m.AddFact(p[0], a, b); err != nil {
					t.Fatal(err)
				}
				shadow.AddFact(p[0], a, b)
				view, err := Run(prog, shadow, Options{})
				if err != nil {
					t.Fatal(err)
				}
				idb := idbOf[name]
				got := m.View().Relation(idb)
				want := view.Relation(idb)
				if !got.Equal(want) {
					t.Fatalf("step %d: incremental %s != recomputed %s",
						step, got.Dump(m.View().Syms), want.Dump(shadow.Syms))
				}
			}
		})
	}
}
