package eval

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"sepdl/internal/ast"
	"sepdl/internal/budget"
	"sepdl/internal/database"
	"sepdl/internal/datagen"
	"sepdl/internal/faultinject"
)

// parOpts turns on the parallel round machinery unconditionally: eight
// workers and no work-size floor, so even the tiny test programs fan out.
func parOpts() Options {
	return Options{Parallelism: 8, ParallelThreshold: -1}
}

// viewDump renders every IDB relation of a finished view, sorted by
// predicate, in the relations' own sorted Dump format — a canonical string
// two evaluations can be compared by, regardless of insertion order.
func viewDump(t *testing.T, prog *ast.Program, db *database.Database, v *database.Database) string {
	t.Helper()
	var preds []string
	for p := range prog.IDBPreds() {
		preds = append(preds, p)
	}
	sort.Strings(preds)
	var sb strings.Builder
	for _, p := range preds {
		r := v.Relation(p)
		if r == nil {
			fmt.Fprintf(&sb, "%s: <nil>\n", p)
			continue
		}
		fmt.Fprintf(&sb, "%s: %s\n", p, r.Dump(db.Syms))
	}
	return sb.String()
}

// equivPrograms is the seq-vs-parallel corpus: every shape the fixpoint
// handles — linear and nonlinear recursion, mutual recursion, multiple
// strata, negation, cyclic data.
var equivPrograms = []struct {
	name  string
	prog  string
	facts string
}{
	{
		name:  "tc-chain",
		prog:  tcProg,
		facts: `edge(a, b). edge(b, c). edge(c, d). edge(d, e).`,
	},
	{
		name:  "tc-cycle",
		prog:  tcProg,
		facts: `edge(a, b). edge(b, c). edge(c, a). edge(c, d).`,
	},
	{
		name: "buys-example11",
		prog: `
buys(X, Y) :- friend(X, W) & buys(W, Y).
buys(X, Y) :- idol(X, W) & buys(W, Y).
buys(X, Y) :- perfectFor(X, Y).
`,
		facts: `
friend(tom, dick). friend(dick, harry). friend(sue, tom).
idol(tom, harry).
perfectFor(harry, radio). perfectFor(dick, tv). perfectFor(alice, car).
`,
	},
	{
		name: "mutual-recursion",
		prog: `
even(X) :- zero(X).
even(Y) :- odd(X) & succ(X, Y).
odd(Y) :- even(X) & succ(X, Y).
`,
		facts: `
zero(n0).
succ(n0, n1). succ(n1, n2). succ(n2, n3). succ(n3, n4). succ(n4, n5).
`,
	},
	{
		name: "nonlinear",
		prog: `
t(X, Y) :- t(X, W) & t(W, Y).
t(X, Y) :- edge(X, Y).
`,
		facts: `edge(a, b). edge(b, c). edge(c, d). edge(d, a).`,
	},
	{
		name: "negation-strata",
		prog: `
reach(X) :- start(X).
reach(Y) :- reach(X) & edge(X, Y).
node(X) :- edge(X, Y).
node(Y) :- edge(X, Y).
blocked(X) :- node(X) & not reach(X).
`,
		facts: `start(a). edge(a, b). edge(c, d). edge(d, c).`,
	},
}

func TestParallelMatchesSequential(t *testing.T) {
	for _, tc := range equivPrograms {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			prog := mustProgram(t, tc.prog)
			db := database.New()
			mustLoad(t, db, tc.facts)

			seqView, err := Run(prog, db, Options{})
			if err != nil {
				t.Fatalf("sequential: %v", err)
			}
			parView, err := Run(prog, db, parOpts())
			if err != nil {
				t.Fatalf("parallel: %v", err)
			}
			seq := viewDump(t, prog, db, seqView)
			par := viewDump(t, prog, db, parView)
			if seq != par {
				t.Errorf("parallel view differs from sequential:\nseq:\n%s\npar:\n%s", seq, par)
			}
		})
	}
}

func TestParallelMatchesSequentialNaive(t *testing.T) {
	for _, tc := range equivPrograms {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			prog := mustProgram(t, tc.prog)
			db := database.New()
			mustLoad(t, db, tc.facts)

			seqView, err := Run(prog, db, Options{Naive: true})
			if err != nil {
				t.Fatalf("sequential naive: %v", err)
			}
			opts := parOpts()
			opts.Naive = true
			parView, err := Run(prog, db, opts)
			if err != nil {
				t.Fatalf("parallel naive: %v", err)
			}
			seq := viewDump(t, prog, db, seqView)
			par := viewDump(t, prog, db, parView)
			if seq != par {
				t.Errorf("parallel naive view differs:\nseq:\n%s\npar:\n%s", seq, par)
			}
		})
	}
}

// TestParallelMatchesSequentialRandomGraph crosses the 4096-tuple default
// threshold path too: with Parallelism set but ParallelThreshold left at
// the default, the small early rounds stay sequential and the large middle
// rounds fan out, and the result must still be identical.
func TestParallelMatchesSequentialRandomGraph(t *testing.T) {
	prog := mustProgram(t, `
path(X, Y) :- e(X, W) & path(W, Y).
path(X, Y) :- e(X, Y).
`)
	db := database.New()
	datagen.RandomGraph(db, "e", "v", 80, 160, 7)

	seqView, err := Run(prog, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := seqView.Relation("path").Dump(db.Syms)
	for _, opts := range []Options{
		{Parallelism: 4},                         // default threshold
		{Parallelism: 4, ParallelThreshold: -1},  // always parallel
		{Parallelism: 2, ParallelThreshold: 100}, // mixed rounds
	} {
		parView, err := Run(prog, db, opts)
		if err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
		if got := parView.Relation("path").Dump(db.Syms); got != want {
			t.Errorf("opts %+v: path differs from sequential", opts)
		}
	}
}

// bigTCSetup returns a workload large enough that budget aborts and faults
// fire mid-fixpoint rather than before the first parallel round.
func bigTCSetup(t *testing.T) (*ast.Program, *database.Database) {
	t.Helper()
	prog := mustProgram(t, `
path(X, Y) :- e(X, W) & path(W, Y).
path(X, Y) :- e(X, Y).
`)
	db := database.New()
	datagen.RandomGraph(db, "e", "v", 120, 240, 11)
	return prog, db
}

func TestParallelBudgetAbortMatchesSequential(t *testing.T) {
	prog, db := bigTCSetup(t)
	for _, limits := range []budget.Limits{
		{MaxTuples: 10},
		{MaxRounds: 2},
		{MaxBytes: 64},
	} {
		limits := limits
		t.Run(fmt.Sprintf("%+v", limits), func(t *testing.T) {
			seqOpts := Options{Budget: budget.New(context.Background(), limits)}
			_, seqErr := Run(prog, db, seqOpts)
			parOpts := parOpts()
			parOpts.Budget = budget.New(context.Background(), limits)
			_, parErr := Run(prog, db, parOpts)
			if !errors.Is(seqErr, budget.ErrBudget) {
				t.Fatalf("sequential err = %v, want budget abort", seqErr)
			}
			if !errors.Is(parErr, budget.ErrBudget) {
				t.Fatalf("parallel err = %v, want budget abort", parErr)
			}
			var seqRE, parRE *budget.ResourceError
			if !errors.As(seqErr, &seqRE) || !errors.As(parErr, &parRE) {
				t.Fatalf("errors are not *ResourceError: %v / %v", seqErr, parErr)
			}
			if seqRE.Limit != parRE.Limit {
				t.Errorf("limit kinds differ: sequential %s, parallel %s", seqRE.Limit, parRE.Limit)
			}
		})
	}
}

func TestParallelFaultInjectionSurfacesCleanly(t *testing.T) {
	prog, db := bigTCSetup(t)
	boom := errors.New("injected storage fault")
	// Fire on several different ticks so the fault lands in different
	// phases of the parallel round (workers, merger, round boundary).
	for _, at := range []int{1, 10, 500} {
		at := at
		t.Run(fmt.Sprintf("at-%d", at), func(t *testing.T) {
			inj := faultinject.FailAt(at, boom)
			opts := parOpts()
			opts.Budget = budget.NewProbed(context.Background(), budget.Limits{}, inj.Probe())
			before := db.NumTuples()
			_, err := Run(prog, db, opts)
			if !errors.Is(err, boom) {
				t.Fatalf("err = %v, want injected fault", err)
			}
			if db.NumTuples() != before {
				t.Errorf("database mutated by aborted run: %d -> %d tuples", before, db.NumTuples())
			}
		})
	}
}

func TestParallelCancellationMidRun(t *testing.T) {
	prog, db := bigTCSetup(t)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	opts := parOpts()
	opts.Budget = budget.New(ctx, budget.Limits{})
	_, err := Run(prog, db, opts)
	// The run either finished before the cancel landed (tiny machines) or
	// must surface the cancellation as a budget abort.
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled (or nil if the run won the race)", err)
	}
}
