package sepdl

import (
	"sepdl/internal/check"
	"sepdl/internal/diag"
)

// Diagnostic is one static-analysis finding: a stable SEPnnn code, a
// severity, a 1-based line:column position, and a message (alias of the
// internal diag type so library callers can consume check results).
type Diagnostic = diag.Diagnostic

// Diagnostics is an ordered list of findings; it implements error.
type Diagnostics = diag.List

// DiagSeverity ranks a finding.
type DiagSeverity = diag.Severity

// The severities, in increasing order of badness.
const (
	DiagInfo    = diag.Info
	DiagWarning = diag.Warning
	DiagError   = diag.Error
)

// CheckSource runs the full static-analysis pass over a program source and
// an optional query ("" for none): well-formedness, stratification, rule
// lints, separability against Definition 2.4, and — when a query is given —
// reachability plus a per-strategy applicability report. The result is
// sorted by source position; syntax failures come back as SEP001
// diagnostics rather than a Go error. The pass never touches a database:
// its cost is polynomial in the size of the rules (§3.1 of the paper).
func CheckSource(src, query string) Diagnostics {
	return check.Source(src, check.Options{Query: query})
}
