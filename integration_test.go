package sepdl

// Integration corpus: each entry is a program + database + queries; every
// applicable strategy is run on every query and all results are
// cross-validated against semi-naive evaluation (the reference semantics).
// Strategies outside their scope must fail loudly, never return wrong
// answers silently.

import (
	"errors"
	"strings"
	"testing"
)

type corpusEntry struct {
	name    string
	program string
	facts   string
	queries []string
	// skip lists strategies that legitimately reject some queries of this
	// entry (scope errors are fine; wrong answers are not).
	skipOK []Strategy
}

var corpus = []corpusEntry{
	{
		name: "example11-tree",
		program: `
buys(X, Y) :- friend(X, W) & buys(W, Y).
buys(X, Y) :- idol(X, W) & buys(W, Y).
buys(X, Y) :- perfectFor(X, Y).
`,
		facts: `
friend(a, b). friend(a, c). friend(b, d). friend(c, d).
idol(d, e). idol(a, e).
perfectFor(e, g1). perfectFor(b, g2). perfectFor(z, g3).
`,
		queries: []string{
			`buys(a, Y)?`, `buys(d, Y)?`, `buys(X, g1)?`, `buys(a, g2)?`,
			`buys(z, g1)?`, `buys(X, Y)?`,
		},
		// Separable rejects the all-free query; the others reject
		// non-stable selections.
		skipOK: []Strategy{Separable, AhoUllman, Counting, HenschenNaqvi},
	},
	{
		name: "example12-cycles",
		program: `
buys(X, Y) :- friend(X, W) & buys(W, Y).
buys(X, Y) :- buys(X, W) & cheaper(Y, W).
buys(X, Y) :- perfectFor(X, Y).
`,
		facts: `
friend(a, b). friend(b, a). friend(b, c).
cheaper(g2, g1). cheaper(g3, g2). cheaper(g1, g3).
perfectFor(c, g1).
`,
		queries: []string{`buys(a, Y)?`, `buys(X, g2)?`, `buys(b, g3)?`},
		skipOK:  []Strategy{AhoUllman, Counting, HenschenNaqvi}, // cyclic data diverges / not stable
	},
	{
		name: "three-classes",
		program: `
t(X, Y, Z) :- a(X, W) & t(W, Y, Z).
t(X, Y, Z) :- t(X, W, Z) & b(W, Y).
t(X, Y, Z) :- t(X, Y, W) & c(W, Z).
t(X, Y, Z) :- t0(X, Y, Z).
`,
		facts: `
a(x1, x2). a(x2, x3).
b(y1, y2). b(y2, y3).
c(z1, z2).
t0(x3, y1, z1). t0(x1, y2, z2).
`,
		queries: []string{
			`t(x1, Y, Z)?`, `t(X, y3, Z)?`, `t(X, Y, z2)?`, `t(x1, y3, Z)?`,
			`t(x1, y3, z2)?`,
		},
		skipOK: []Strategy{AhoUllman},
	},
	{
		name: "wide-class-partial",
		program: `
t(X, Y, Z) :- a(X, Y, U, V) & t(U, V, Z).
t(X, Y, Z) :- t(X, Y, W) & b(W, Z).
t(X, Y, Z) :- t0(X, Y, Z).
`,
		facts: `
a(p1, q1, p2, q2). a(p2, q2, p3, q3).
t0(p3, q3, w1). t0(p1, q1, w0).
b(w1, w2). b(w0, w3). b(w2, w4).
`,
		queries: []string{
			`t(p1, Y, Z)?`, `t(X, q1, Z)?`, `t(p1, q1, Z)?`, `t(X, Y, w4)?`,
			`t(p1, Y, w2)?`,
		},
		skipOK: []Strategy{AhoUllman, Counting, HenschenNaqvi}, // partial selections out of scope
	},
	{
		name: "idb-support-preds",
		program: `
contact(X, Y) :- friend(X, Y).
contact(X, Y) :- colleague(X, Y).
closeTo(X, Y) :- contact(X, Y) & contact(Y, X).
buys(X, Y) :- closeTo(X, W) & buys(W, Y).
buys(X, Y) :- perfectFor(X, Y).
`,
		facts: `
friend(a, b). colleague(b, a). friend(b, c). friend(c, b).
perfectFor(c, g).
`,
		queries: []string{`buys(a, Y)?`, `buys(X, g)?`},
		// closeTo is cyclic, so Counting and HN legitimately diverge.
		skipOK: []Strategy{AhoUllman, Counting, HenschenNaqvi},
	},
	{
		name: "multiple-exits-and-pers",
		program: `
reach(X, Y, T) :- hop(X, W) & reach(W, Y, T).
reach(X, Y, T) :- direct(X, Y, T).
reach(X, Y, T) :- shuttle(Y, X, T).
`,
		facts: `
hop(a, b). hop(b, c).
direct(c, d, bus). direct(b, e, car).
shuttle(f, c, bus).
`,
		queries: []string{
			`reach(a, Y, T)?`, `reach(X, d, T)?`, `reach(X, Y, bus)?`,
			`reach(a, f, bus)?`,
		},
		skipOK: []Strategy{AhoUllman},
	},
	{
		name: "negation-strata",
		program: `
reach(X) :- start(X).
reach(Y) :- reach(X) & edge(X, Y).
node(X) :- edge(X, Y).
node(Y) :- edge(X, Y).
blocked(X) :- node(X) & not reach(X).
`,
		facts: `
start(a). edge(a, b). edge(c, d). edge(d, c).
`,
		queries: []string{`blocked(X)?`, `blocked(c)?`, `reach(X)?`, `blocked(a)?`},
		// The paper's algorithms are pure-Horn only; reach's rules make
		// selections non-stable for Aho-Ullman; tabling rejects negated
		// IDB atoms.
		skipOK: []Strategy{Separable, Counting, HenschenNaqvi, AhoUllman, Tabling},
	},
}

func TestCorpusCrossValidation(t *testing.T) {
	strategies := []Strategy{
		Separable, MagicSets, MagicSetsSup, Counting, HenschenNaqvi,
		AhoUllman, Tabling, SemiNaive, Naive,
	}
	for _, entry := range corpus {
		entry := entry
		t.Run(entry.name, func(t *testing.T) {
			skip := make(map[Strategy]bool)
			for _, s := range entry.skipOK {
				skip[s] = true
			}
			e := New()
			if err := e.LoadProgram(entry.program); err != nil {
				t.Fatal(err)
			}
			if err := e.LoadFacts(entry.facts); err != nil {
				t.Fatal(err)
			}
			for _, query := range entry.queries {
				ref, err := e.Query(query, WithStrategy(SemiNaive))
				if err != nil {
					t.Fatalf("%s [seminaive]: %v", query, err)
				}
				for _, s := range strategies {
					res, err := e.Query(query, WithStrategy(s))
					if err != nil {
						if skip[s] {
							continue // legitimate scope rejection
						}
						t.Errorf("%s [%s]: %v", query, s, err)
						continue
					}
					if res.String() != ref.String() {
						t.Errorf("%s [%s] = %s, want %s", query, s, res, ref)
					}
				}
				// Auto must always succeed and agree.
				res, err := e.Query(query)
				if err != nil {
					t.Errorf("%s [auto]: %v", query, err)
					continue
				}
				if res.String() != ref.String() {
					t.Errorf("%s [auto via %s] = %s, want %s", query, res.Stats.Strategy, res, ref)
				}
			}
		})
	}
}

// TestCorpusRuleOrderInvariance permutes rule order and checks that every
// query of every corpus entry still gets the same answers under Auto.
func TestCorpusRuleOrderInvariance(t *testing.T) {
	for _, entry := range corpus {
		entry := entry
		t.Run(entry.name, func(t *testing.T) {
			e1 := New()
			if err := e1.LoadProgram(entry.program); err != nil {
				t.Fatal(err)
			}
			e1.LoadFacts(entry.facts)

			// Reverse the rule order by re-parsing line by line.
			var lines []string
			for _, l := range strings.Split(entry.program, "\n") {
				if strings.TrimSpace(l) != "" {
					lines = append(lines, l)
				}
			}
			for i, j := 0, len(lines)-1; i < j; i, j = i+1, j-1 {
				lines[i], lines[j] = lines[j], lines[i]
			}
			e2 := New()
			if err := e2.LoadProgram(strings.Join(lines, "\n")); err != nil {
				t.Fatal(err)
			}
			e2.LoadFacts(entry.facts)

			for _, query := range entry.queries {
				r1, err := e1.Query(query)
				if err != nil {
					t.Fatal(err)
				}
				r2, err := e2.Query(query)
				if err != nil {
					t.Fatal(err)
				}
				if r1.String() != r2.String() {
					t.Errorf("%s: order-sensitive answers: %s vs %s", query, r1, r2)
				}
			}
		})
	}
}

// TestCorpusScopeRejectionsAreErrors double-checks that a strategy listed
// in skipOK actually errors (rather than silently succeeding with wrong
// answers) for at least one query of the entry, guarding the skip lists
// against rot.
func TestCorpusScopeRejectionsAreErrors(t *testing.T) {
	for _, entry := range corpus {
		entry := entry
		t.Run(entry.name, func(t *testing.T) {
			e := New()
			if err := e.LoadProgram(entry.program); err != nil {
				t.Fatal(err)
			}
			e.LoadFacts(entry.facts)
			for _, s := range entry.skipOK {
				failed := false
				for _, query := range entry.queries {
					if _, err := e.Query(query, WithStrategy(s)); err != nil {
						failed = true
						var nothing error
						_ = errors.Is(err, nothing)
						break
					}
				}
				if !failed {
					t.Errorf("strategy %s listed in skipOK but never errored", s)
				}
			}
		})
	}
}
