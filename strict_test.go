package sepdl

import (
	"errors"
	"testing"
)

const nonSeparableSrc = `sg(X, Y) :- flat(X, Y).
sg(X, Y) :- up(X, U) & sg(U, V) & down(V, Y).
`

func TestStrictChecksRejectWarnings(t *testing.T) {
	// Default engines accept the program (it evaluates fine bottom-up).
	if err := New().LoadProgram(nonSeparableSrc); err != nil {
		t.Fatalf("default engine rejected: %v", err)
	}
	// Strict engines reject it: sg is not separable (condition 4).
	err := New(WithStrictChecks()).LoadProgram(nonSeparableSrc)
	if err == nil {
		t.Fatal("strict engine accepted a non-separable program")
	}
	var l Diagnostics
	if !errors.As(err, &l) {
		t.Fatalf("err is %T, want Diagnostics", err)
	}
	found := false
	for _, d := range l {
		if d.Code == "SEP037" {
			found = true
			if !d.Pos.Known() {
				t.Error("strict rejection lost its position")
			}
		}
		if d.Severity < DiagWarning {
			t.Errorf("info finding %v leaked into the rejection", d)
		}
	}
	if !found {
		t.Errorf("rejection %v does not carry SEP037", l.Codes())
	}
}

func TestStrictChecksAcceptCleanProgram(t *testing.T) {
	e := New(WithStrictChecks())
	if err := e.LoadProgram("buys(X, Y) :- friend(X, W) & buys(W, Y).\nbuys(X, Y) :- perfectFor(X, Y).\n"); err != nil {
		t.Fatalf("strict engine rejected a separable program: %v", err)
	}
	if err := e.LoadFacts("friend(tom, dick). perfectFor(dick, radio)."); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query("buys(tom, Y)?")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("answers = %d, want 1", res.Len())
	}
}

func TestCheckSourceAPI(t *testing.T) {
	l := CheckSource(nonSeparableSrc, "sg(ann, Y)?")
	if l.Max() != DiagWarning {
		t.Fatalf("Max = %v, want warning", l.Max())
	}
	if len(l.Codes()) == 0 {
		t.Fatal("no diagnostics")
	}
}
