package sepdl

import (
	"context"
	"fmt"
	"time"

	"sepdl/internal/ast"
	"sepdl/internal/budget"
	"sepdl/internal/core"
	"sepdl/internal/database"
	"sepdl/internal/eval"
	"sepdl/internal/magic"
	"sepdl/internal/parser"
	"sepdl/internal/plancache"
	"sepdl/internal/rel"
	"sepdl/internal/stats"
)

// Prepared is a query form compiled once and executed many times with
// fresh selection constants — the paper's compile-once/execute-many
// promise as an API. A Prepared is an immutable handle, safe for
// concurrent use; each Run evaluates against the snapshot current at that
// call, so a Prepared never serves stale answers after writes (the caches
// underneath are revision-keyed and simply recompile or refill).
type Prepared struct {
	e        *Engine
	form     ast.Atom
	text     string
	paramPos []int
	cfg      queryConfig
}

// Prepare parses queryForm once and returns a handle that binds fresh
// constants into the form's cached plan per execution. The constants in
// queryForm are placeholders: their positions become Run's parameters, in
// argument order, and their values only warm the plan cache. For example
// Prepare("buys(tom, Y)?") takes one constant per Run, at position 0.
// Options are captured now and apply to every Run and RunBatch.
func (e *Engine) Prepare(queryForm string, opts ...QueryOption) (*Prepared, error) {
	cfg := e.newQueryConfig(opts)
	q, err := parser.Query(queryForm)
	if err != nil {
		return nil, err
	}
	var pos []int
	for i, t := range q.Args {
		if !t.IsVar() {
			pos = append(pos, i)
		}
	}
	p := &Prepared{e: e, form: q, text: queryForm, paramPos: pos, cfg: cfg}
	// Warm the current revision's plan cache so the first Run is already a
	// hit; later program revisions recompile on first use automatically.
	st := e.progState()
	if st.prog.IDBPreds()[q.Pred] && !e.planCacheOff {
		st.cachedPlan(q, cfg)
	}
	return p, nil
}

// NumParams returns how many constants each Run takes.
func (p *Prepared) NumParams() int { return len(p.paramPos) }

// bind substitutes consts into the form's parameter positions.
func (p *Prepared) bind(consts []string) (ast.Atom, error) {
	if len(consts) != len(p.paramPos) {
		return ast.Atom{}, fmt.Errorf("sepdl: prepared query %q takes %d constants, got %d", p.text, len(p.paramPos), len(consts))
	}
	args := make([]ast.Term, len(p.form.Args))
	copy(args, p.form.Args)
	for i, pos := range p.paramPos {
		args[pos] = ast.C(consts[i])
	}
	return ast.Atom{Pred: p.form.Pred, Args: args}, nil
}

// Run evaluates the prepared form with the given constants, one per
// placeholder in argument order. Semantics (snapshot isolation, admission,
// budgets, fallback) are exactly Query's; only the plan compilation is
// skipped.
func (p *Prepared) Run(ctx context.Context, consts ...string) (*Result, error) {
	q, err := p.bind(consts)
	if err != nil {
		return nil, err
	}
	return p.e.queryAtom(ctx, q, q.String(), p.cfg)
}

// RunBatch evaluates one constant vector per element of constSets in a
// single seeded fixpoint (see QueryBatch), returning one Result per
// vector, aligned with constSets.
func (p *Prepared) RunBatch(ctx context.Context, constSets ...[]string) ([]*Result, error) {
	qs := make([]ast.Atom, len(constSets))
	for i, cs := range constSets {
		q, err := p.bind(cs)
		if err != nil {
			return nil, err
		}
		qs[i] = q
	}
	return p.e.queryBatch(ctx, qs, p.cfg)
}

// QueryBatch evaluates many queries of one form — same predicate,
// constants at the same positions — in a single seeded fixpoint, sharing
// one snapshot, one admission slot, and one budget across the batch:
// multi-seed driver phases for the Separable strategy, multi-seed magic
// facts for the Magic strategies, one shared fixpoint view for
// SemiNaive/Naive. Results align with queries, and each answer set is
// identical to what Query would return for that element. Per-query
// strategies without a multi-seed form (Counting, HN, Aho-Ullman,
// Tabling) still share the snapshot, slot, and budget, evaluating
// seed-by-seed. Stats on every Result report the whole batch's work, with
// BatchSize = len(queries).
func (e *Engine) QueryBatch(ctx context.Context, queries []string, opts ...QueryOption) ([]*Result, error) {
	cfg := e.newQueryConfig(opts)
	qs := make([]ast.Atom, len(queries))
	for i, s := range queries {
		q, err := parser.Query(s)
		if err != nil {
			return nil, err
		}
		qs[i] = q
	}
	return e.queryBatch(ctx, qs, cfg)
}

// queryBatch is the shared batched-evaluation path under QueryBatch and
// Prepared.RunBatch: one admission slot, one snapshot, one budget, one
// plan for the whole batch.
func (e *Engine) queryBatch(ctx context.Context, qs []ast.Atom, cfg queryConfig) ([]*Result, error) {
	if len(qs) == 0 {
		return nil, nil
	}
	for _, q := range qs[1:] {
		if q.Pred != qs[0].Pred || formMask(q) != formMask(qs[0]) {
			return nil, fmt.Errorf("sepdl: batch mixes query forms: %s vs %s", q, qs[0])
		}
	}
	if cfg.deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.deadline)
		defer cancel()
	}
	release, err := e.admit(ctx)
	if err != nil {
		e.counters.admitRejected(err)
		return nil, err
	}
	defer release()
	e.counters.queries.Add(1)
	e.counters.batches.Add(1)
	e.counters.batchQueries.Add(uint64(len(qs)))
	e.counters.inFlight.Add(1)
	defer e.counters.inFlight.Add(-1)
	st, db, dbRev := e.snapshot()

	bud := cfg.tracker(ctx)
	if err := bud.Err(); err != nil {
		return nil, e.counters.evalFailed(err)
	}
	c := stats.New()
	start := time.Now()

	results := func(strategy, fellFrom Strategy, hit bool, anss []*rel.Relation, col *stats.Collector) []*Result {
		out := make([]*Result, len(qs))
		for i := range qs {
			stt := Stats{Strategy: strategy, FallbackFrom: fellFrom, PlanCacheHit: hit,
				BatchSize: len(qs), Duration: time.Since(start)}
			out[i] = result(db, qs[i], anss[i], stt, col)
		}
		return out
	}

	if !st.prog.IDBPreds()[qs[0].Pred] {
		anss := make([]*rel.Relation, len(qs))
		for i, q := range qs {
			ans, err := eval.Answer(db, q)
			if err != nil {
				return nil, e.counters.evalFailed(err)
			}
			anss[i] = ans
		}
		return results(cfg.strategy, "", false, anss, c), nil
	}

	pl, hit := e.planFor(st, qs[0], cfg)
	e.counters.planLookup(hit)
	strategy := pl.strategy
	bud.SetStrategy(string(strategy))
	if e.closures != nil {
		cfg.closures = e.closures
		cfg.scope = plancache.Scope{ProgRev: st.rev, DBRev: dbRev}
	}

	anss, err := runStrategyBatch(st, db, qs, pl, cfg, c, bud)
	fellFrom := Strategy("")
	if err != nil && cfg.fallback && fallbackEligible(strategy, err) {
		fbBud := cfg.tracker(ctx)
		fbBud.SetStrategy(string(SemiNaive))
		fbCol := stats.New()
		fbAnss, fbErr := runStrategyBatch(st, db, qs, &plan{strategy: SemiNaive}, cfg, fbCol, fbBud)
		if fbErr == nil {
			fellFrom, strategy, anss, err, c = strategy, SemiNaive, fbAnss, nil, fbCol
		} else {
			err = fmt.Errorf("%w (semi-naive fallback also failed: %v)", err, fbErr)
		}
	}
	if err != nil {
		return nil, e.counters.evalFailed(err)
	}
	out := results(strategy, fellFrom, hit, anss, c)
	if len(out) > 0 {
		// Every batch element reports the whole batch's work; record the
		// shared evaluation's outcome once.
		e.counters.evalOK(out[0])
	}
	return out, nil
}

// runStrategyBatch dispatches one batched evaluation attempt, with the
// same last-resort recovery as runStrategy. Strategies with a multi-seed
// form run one shared fixpoint; the rest loop seed-by-seed over the shared
// snapshot and budget.
func runStrategyBatch(st *progState, db *database.Database, qs []ast.Atom, pl *plan, cfg queryConfig, c *stats.Collector, bud *budget.Budget) (anss []*rel.Relation, err error) {
	strategy := pl.strategy
	defer func() {
		if r := recover(); r != nil {
			anss = nil
			if aerr, ok := budget.AsAbort(r); ok {
				err = aerr
				return
			}
			err = fmt.Errorf("%w batch-evaluating %q (%d seeds) with strategy %s: %v", ErrInternal, qs[0].Pred, len(qs), strategy, r)
		}
	}()
	if testHookEval != nil {
		testHookEval()
	}

	switch strategy {
	case Separable:
		return core.AnswerBatch(st.prog, db, qs, core.EvalOptions{
			Collector:         c,
			Analysis:          pl.analysis,
			AllowDisconnected: cfg.allowDisconnected,
			Budget:            bud,
			Parallelism:       cfg.parallelism,
			ParallelThreshold: cfg.parThreshold,
			Closures:          cfg.closures,
			CacheScope:        cfg.scope,
		})
	case MagicSets, MagicSetsSup:
		return magic.AnswerBatch(st.prog, db, qs, magic.Options{
			Collector:         c,
			MaxIterations:     cfg.maxIterations,
			Supplementary:     strategy == MagicSetsSup,
			Budget:            bud,
			Parallelism:       cfg.parallelism,
			ParallelThreshold: cfg.parThreshold,
			Template:          pl.template,
		})
	case SemiNaive, Naive:
		view, err := eval.Run(st.prog, db, eval.Options{
			Collector:         c,
			Naive:             strategy == Naive,
			MaxIterations:     cfg.maxIterations,
			Budget:            bud,
			Parallelism:       cfg.parallelism,
			ParallelThreshold: cfg.parThreshold,
		})
		if err != nil {
			return nil, err
		}
		anss = make([]*rel.Relation, len(qs))
		for i, q := range qs {
			if anss[i], err = eval.Answer(view, q); err != nil {
				return nil, err
			}
		}
		return anss, nil
	default:
		anss = make([]*rel.Relation, len(qs))
		for i, q := range qs {
			ans, err := runStrategy(st, db, q, q.String(), pl, cfg, c, bud)
			if err != nil {
				return nil, err
			}
			anss[i] = ans
		}
		return anss, nil
	}
}
