package sepdl

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"sepdl/internal/parser"
)

// queryConsts extracts the constants of a query string in argument order —
// the parameters a Prepared for that form takes.
func queryConsts(t *testing.T, query string) []string {
	t.Helper()
	q, err := parser.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, a := range q.Args {
		if !a.IsVar() {
			out = append(out, a.Name)
		}
	}
	return out
}

// uncachedEngine builds an engine with both caches disabled — the
// correctness baseline for every cache test.
func uncachedEngine(t *testing.T, program, facts string) *Engine {
	t.Helper()
	e := New(WithPlanCache(false), WithClosureCache(-1))
	if err := e.LoadProgram(program); err != nil {
		t.Fatal(err)
	}
	if err := e.LoadFacts(facts); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestCorpusCachedEquivalence runs every corpus query under every strategy
// four ways — uncached, cold, warm (same engine, second time), and through
// a Prepared handle — and demands byte-identical answers.
func TestCorpusCachedEquivalence(t *testing.T) {
	strategies := []Strategy{
		Separable, MagicSets, MagicSetsSup, Counting, HenschenNaqvi,
		AhoUllman, Tabling, SemiNaive, Naive, Auto,
	}
	for _, entry := range corpus {
		entry := entry
		t.Run(entry.name, func(t *testing.T) {
			plain := uncachedEngine(t, entry.program, entry.facts)
			cached := New()
			if err := cached.LoadProgram(entry.program); err != nil {
				t.Fatal(err)
			}
			if err := cached.LoadFacts(entry.facts); err != nil {
				t.Fatal(err)
			}
			for _, query := range entry.queries {
				for _, s := range strategies {
					ref, err := plain.Query(query, WithStrategy(s))
					if err != nil {
						// Scope rejections must reproduce identically from the
						// cached plan.
						if _, cerr := cached.Query(query, WithStrategy(s)); cerr == nil {
							t.Errorf("%s [%s]: uncached rejects (%v) but cached succeeds", query, s, err)
						}
						continue
					}
					for _, pass := range []string{"cold", "warm"} {
						res, err := cached.Query(query, WithStrategy(s))
						if err != nil {
							t.Errorf("%s [%s %s]: %v", query, s, pass, err)
							continue
						}
						if res.String() != ref.String() {
							t.Errorf("%s [%s %s] = %s, want %s", query, s, pass, res, ref)
						}
					}
					p, err := cached.Prepare(query, WithStrategy(s))
					if err != nil {
						t.Errorf("%s [%s]: Prepare: %v", query, s, err)
						continue
					}
					res, err := p.Run(context.Background(), queryConsts(t, query)...)
					if err != nil {
						t.Errorf("%s [%s prepared]: %v", query, s, err)
						continue
					}
					if res.String() != ref.String() {
						t.Errorf("%s [%s prepared] = %s, want %s", query, s, res, ref)
					}
				}
			}
		})
	}
}

// TestCorpusBatchedEquivalence batches every corpus query with itself (a
// same-form batch always exists: the query twice) and, where the entry has
// several queries of one form, batches those together; every element must
// match the uncached per-query answer.
func TestCorpusBatchedEquivalence(t *testing.T) {
	strategies := []Strategy{
		Separable, MagicSets, MagicSetsSup, Counting, HenschenNaqvi,
		AhoUllman, Tabling, SemiNaive, Naive, Auto,
	}
	ctx := context.Background()
	for _, entry := range corpus {
		entry := entry
		t.Run(entry.name, func(t *testing.T) {
			plain := uncachedEngine(t, entry.program, entry.facts)
			cached := New()
			if err := cached.LoadProgram(entry.program); err != nil {
				t.Fatal(err)
			}
			if err := cached.LoadFacts(entry.facts); err != nil {
				t.Fatal(err)
			}
			// Group queries by (pred, form mask) so batches are well-formed.
			groups := map[string][]string{}
			for _, query := range entry.queries {
				q, err := parser.Query(query)
				if err != nil {
					t.Fatal(err)
				}
				key := q.Pred + "/" + formMask(q)
				groups[key] = append(groups[key], query)
			}
			for _, group := range groups {
				// Duplicate the first query so every batch has >1 element and
				// a repeated seed, both interesting cases.
				batch := append([]string{group[0]}, group...)
				for _, s := range strategies {
					want := make([]string, len(batch))
					ok := true
					for i, query := range batch {
						ref, err := plain.Query(query, WithStrategy(s))
						if err != nil {
							ok = false
							break
						}
						want[i] = ref.String()
					}
					results, err := cached.QueryBatch(ctx, batch, WithStrategy(s))
					if !ok {
						if err == nil {
							t.Errorf("batch %v [%s]: uncached rejects but batch succeeds", batch, s)
						}
						continue
					}
					if err != nil {
						t.Errorf("batch %v [%s]: %v", batch, s, err)
						continue
					}
					for i, res := range results {
						if res.String() != want[i] {
							t.Errorf("batch %v [%s] element %d = %s, want %s", batch, s, i, res, want[i])
						}
						if res.Stats.BatchSize != len(batch) {
							t.Errorf("batch %v [%s] element %d BatchSize = %d, want %d",
								batch, s, i, res.Stats.BatchSize, len(batch))
						}
					}
				}
			}
		})
	}
}

const multiClassProgram = `
t(X, Y) :- e1(X, W) & t(W, Y).
t(X, Y) :- e2(Y, W) & t(X, W).
t(X, Y) :- t0(X, Y).
`

const multiClassFacts = `
e1(a1, a2). e1(a2, a3). e1(a3, a4).
e2(b2, b1). e2(b3, b2). e2(b4, b3).
t0(a4, b1).
`

func TestStatsCacheCounters(t *testing.T) {
	e := New()
	if err := e.LoadProgram(multiClassProgram); err != nil {
		t.Fatal(err)
	}
	if err := e.LoadFacts(multiClassFacts); err != nil {
		t.Fatal(err)
	}
	cold, err := e.Query("t(a1, Y)?", WithStrategy(Separable))
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats.PlanCacheHit {
		t.Error("first query reported a plan-cache hit")
	}
	if cold.Stats.ClosureCacheMisses == 0 {
		t.Errorf("cold query reported no closure-cache misses: %+v", cold.Stats)
	}
	if cold.Stats.BatchSize != 1 {
		t.Errorf("single query BatchSize = %d, want 1", cold.Stats.BatchSize)
	}
	warm, err := e.Query("t(a2, Y)?", WithStrategy(Separable))
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Stats.PlanCacheHit {
		t.Error("second query missed the plan cache")
	}
	if warm.Stats.ClosureCacheHits == 0 {
		t.Errorf("warm query had no closure-cache hits: %+v", warm.Stats)
	}
	if cold.String() == "" || warm.String() == "" {
		t.Error("queries returned empty answers")
	}
}

func TestPreparedRunAndBatch(t *testing.T) {
	e := New()
	if err := e.LoadProgram(multiClassProgram); err != nil {
		t.Fatal(err)
	}
	if err := e.LoadFacts(multiClassFacts); err != nil {
		t.Fatal(err)
	}
	p, err := e.Prepare("t(a1, Y)?")
	if err != nil {
		t.Fatal(err)
	}
	if p.NumParams() != 1 {
		t.Fatalf("NumParams = %d, want 1", p.NumParams())
	}
	ctx := context.Background()
	for _, c := range []string{"a1", "a2", "a3", "a4"} {
		res, err := p.Run(ctx, c)
		if err != nil {
			t.Fatalf("Run(%s): %v", c, err)
		}
		ref, err := e.Query(fmt.Sprintf("t(%s, Y)?", c))
		if err != nil {
			t.Fatal(err)
		}
		if res.String() != ref.String() {
			t.Errorf("Run(%s) = %s, want %s", c, res, ref)
		}
	}
	if _, err := p.Run(ctx); err == nil {
		t.Error("Run with 0 constants for a 1-parameter form should fail")
	}
	if _, err := p.Run(ctx, "a1", "a2"); err == nil {
		t.Error("Run with 2 constants for a 1-parameter form should fail")
	}
	results, err := p.RunBatch(ctx, []string{"a1"}, []string{"a3"}, []string{"a1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("RunBatch returned %d results, want 3", len(results))
	}
	for i, c := range []string{"a1", "a3", "a1"} {
		ref, err := e.Query(fmt.Sprintf("t(%s, Y)?", c))
		if err != nil {
			t.Fatal(err)
		}
		if results[i].String() != ref.String() {
			t.Errorf("RunBatch[%d] (%s) = %s, want %s", i, c, results[i], ref)
		}
		if results[i].Stats.BatchSize != 3 {
			t.Errorf("RunBatch[%d] BatchSize = %d, want 3", i, results[i].Stats.BatchSize)
		}
	}
}

func TestQueryBatchRejectsMixedForms(t *testing.T) {
	e := New()
	if err := e.LoadProgram(multiClassProgram); err != nil {
		t.Fatal(err)
	}
	if err := e.LoadFacts(multiClassFacts); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := e.QueryBatch(ctx, []string{"t(a1, Y)?", "t(X, b1)?"}); err == nil ||
		!strings.Contains(err.Error(), "mixes query forms") {
		t.Errorf("mixed-form batch error = %v, want 'mixes query forms'", err)
	}
	if res, err := e.QueryBatch(ctx, nil); err != nil || res != nil {
		t.Errorf("empty batch = (%v, %v), want (nil, nil)", res, err)
	}
}

// TestCacheInvalidation mutates the engine between cached queries in every
// supported way and checks that answers always reflect the current state,
// matching a fresh uncached engine.
func TestCacheInvalidation(t *testing.T) {
	e := New()
	if err := e.LoadProgram(multiClassProgram); err != nil {
		t.Fatal(err)
	}
	if err := e.LoadFacts(multiClassFacts); err != nil {
		t.Fatal(err)
	}
	check := func(step, program, facts string) {
		t.Helper()
		for _, q := range []string{"t(a1, Y)?", "t(a2, Y)?"} {
			res, err := e.Query(q, WithStrategy(Separable))
			if err != nil {
				t.Fatalf("%s: %s: %v", step, q, err)
			}
			ref, err := uncachedEngine(t, program, facts).Query(q, WithStrategy(Separable))
			if err != nil {
				t.Fatalf("%s: %s [uncached]: %v", step, q, err)
			}
			if res.String() != ref.String() {
				t.Errorf("%s: %s = %s, want %s (stale cache?)", step, q, res, ref)
			}
		}
	}
	check("initial", multiClassProgram, multiClassFacts)

	// AddFact extends the non-driver chain: cached closures must refill.
	if err := e.AddFact("e2", "b5", "b4"); err != nil {
		t.Fatal(err)
	}
	facts2 := multiClassFacts + "\ne2(b5, b4)."
	check("after AddFact", multiClassProgram, facts2)

	// Re-adding an existing fact must not change answers (and need not
	// invalidate anything).
	if err := e.AddFact("e2", "b5", "b4"); err != nil {
		t.Fatal(err)
	}
	check("after duplicate AddFact", multiClassProgram, facts2)

	// LoadFacts with new tuples invalidates too.
	if err := e.LoadFacts("e1(a0, a1)."); err != nil {
		t.Fatal(err)
	}
	facts3 := facts2 + "\ne1(a0, a1)."
	check("after LoadFacts", multiClassProgram, facts3)

	// LoadProgram replaces the program: plans and closures for the old
	// revision must not leak into the new one.
	prog2 := multiClassProgram + "\nt(X, Y) :- extra(X, Y).\n"
	if err := e.LoadProgram(prog2); err != nil {
		t.Fatal(err)
	}
	if err := e.LoadFacts("extra(a1, b9)."); err != nil {
		t.Fatal(err)
	}
	facts4 := facts3 + "\nextra(a1, b9)."
	check("after LoadProgram", prog2, facts4)
}

// TestConcurrentWriterCachedReaders races cached readers against a writer
// under the race detector. Each reader's successive answer counts must be
// non-decreasing (facts are only added, and snapshots are monotone), and
// the final warm answers must match a fresh uncached engine.
func TestConcurrentWriterCachedReaders(t *testing.T) {
	e := New()
	if err := e.LoadProgram(multiClassProgram); err != nil {
		t.Fatal(err)
	}
	if err := e.LoadFacts(multiClassFacts); err != nil {
		t.Fatal(err)
	}
	const readers, rounds, extra = 4, 20, 10

	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := -1
			for i := 0; i < rounds; i++ {
				res, err := e.Query("t(a1, Y)?", WithStrategy(Separable))
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				if res.Len() < last {
					t.Errorf("reader observed answers shrinking: %d then %d", last, res.Len())
					return
				}
				last = res.Len()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < extra; i++ {
			if err := e.AddFact("e2", fmt.Sprintf("c%d", i+1), "b4"); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	finalFacts := multiClassFacts
	for i := 0; i < extra; i++ {
		finalFacts += fmt.Sprintf("\ne2(c%d, b4).", i+1)
	}
	res, err := e.Query("t(a1, Y)?", WithStrategy(Separable))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := uncachedEngine(t, multiClassProgram, finalFacts).Query("t(a1, Y)?", WithStrategy(Separable))
	if err != nil {
		t.Fatal(err)
	}
	if res.String() != ref.String() {
		t.Errorf("final cached answer %s, want %s", res, ref)
	}
}

// TestClosureCacheDisabled checks WithClosureCache(-1) really bypasses the
// closure cache while the plan cache still works.
func TestClosureCacheDisabled(t *testing.T) {
	e := New(WithClosureCache(-1))
	if err := e.LoadProgram(multiClassProgram); err != nil {
		t.Fatal(err)
	}
	if err := e.LoadFacts(multiClassFacts); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		res, err := e.Query("t(a1, Y)?", WithStrategy(Separable))
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.ClosureCacheHits != 0 || res.Stats.ClosureCacheMisses != 0 {
			t.Errorf("closure cache disabled but counted: %+v", res.Stats)
		}
		if i == 1 && !res.Stats.PlanCacheHit {
			t.Error("plan cache should still hit with the closure cache off")
		}
	}
}
