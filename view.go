package sepdl

import (
	"context"
	"time"

	"sepdl/internal/eval"
	"sepdl/internal/parser"
	"sepdl/internal/stats"
)

// Materialized is the strategy name reported by View queries.
const Materialized Strategy = "materialized"

// View is an incrementally maintained materialization of the engine's
// program: every IDB relation is computed once and then kept current as
// facts are added (semi-naive propagation) or deleted (delete-and-
// rederive) through the view, so queries are index lookups with no
// fixpoint work. Views require a negation-free program and snapshot the
// engine's facts at creation time (later Engine.AddFact calls do not
// affect the view, and vice versa).
type View struct {
	m   *eval.Materialized
	col *stats.Collector
}

// Materialize computes all IDB relations of the engine's current program
// over its current facts and returns a maintainable view.
func (e *Engine) Materialize() (*View, error) {
	return e.MaterializeCtx(context.Background())
}

// MaterializeCtx is Materialize under ctx and the WithBudget / WithDeadline
// options (other options are ignored). The context and deadline govern the
// initial computation only; the tuple, round, and byte limits are
// cumulative across the initial computation and all later incremental
// maintenance through the view. An abort during the initial computation
// leaves no view; an abort while propagating a later AddFact or DeleteFact
// marks the view broken (see View.Broken) because its relations may be
// half-updated.
func (e *Engine) MaterializeCtx(ctx context.Context, opts ...QueryOption) (*View, error) {
	cfg := queryConfig{strategy: Auto}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.deadline)
		defer cancel()
	}
	bud := cfg.tracker(ctx)
	if err := bud.Err(); err != nil {
		return nil, err
	}
	bud.SetStrategy(string(Materialized))
	col := stats.New()
	m, err := eval.MaterializeBudget(e.prog, e.db, col, bud)
	if err != nil {
		return nil, err
	}
	// The build's context (and any WithDeadline timer, canceled above on
	// return) must not poison maintenance performed later.
	bud.DetachContext()
	return &View{m: m, col: col}, nil
}

// Broken reports the error that interrupted a mutation mid-propagation,
// if any. A broken view's relations may be half-updated, so all further
// operations on it fail with this error; rebuild with MaterializeCtx.
func (v *View) Broken() error { return v.m.Broken() }

// AddFact inserts a base fact into the view and propagates its
// consequences incrementally. It reports whether the fact was new.
func (v *View) AddFact(pred string, args ...string) (bool, error) {
	return v.m.AddFact(pred, args...)
}

// Query answers a query directly from the maintained relations.
func (v *View) Query(query string) (*Result, error) {
	q, err := parser.Query(query)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	ans, err := v.m.Answer(q)
	if err != nil {
		return nil, err
	}
	st := Stats{
		Strategy:      Materialized,
		RelationSizes: v.col.Sizes,
		Iterations:    v.col.Iterations,
		Inserted:      v.col.Inserted,
		Duration:      time.Since(start),
	}
	st.MaxRelation, st.MaxRelationSize = v.col.MaxRelation()
	return &Result{
		Columns: eval.QueryVars(q),
		Stats:   st,
		rel:     ans,
		db:      v.m.View(),
	}, nil
}

// DeleteFact removes a base fact from the view and maintains the derived
// relations with delete-and-rederive (DRed). It reports whether the fact
// was present.
func (v *View) DeleteFact(pred string, args ...string) (bool, error) {
	return v.m.DeleteFact(pred, args...)
}
