package sepdl

import (
	"context"
	"sync"
	"time"

	"sepdl/internal/eval"
	"sepdl/internal/parser"
	"sepdl/internal/stats"
)

// Materialized is the strategy name reported by View queries.
const Materialized Strategy = "materialized"

// View is an incrementally maintained materialization of the engine's
// program: every IDB relation is computed once and then kept current as
// facts are added (semi-naive propagation) or deleted (delete-and-
// rederive) through the view, so queries are index lookups with no
// fixpoint work. Views require a negation-free program and snapshot the
// engine's facts at creation time (later Engine.AddFact calls do not
// affect the view, and vice versa).
//
// A View is safe for concurrent use: mutations serialize on an internal
// lock, and Query evaluates against an immutable snapshot of the
// maintained relations, so readers never observe a half-propagated
// update. Views self-heal — if a maintenance pass is aborted by the
// resource budget mid-mutation the view is marked broken, and the next
// access rebuilds the derived relations from the (always fully updated)
// base relations under the lock instead of erroring forever. The
// interrupted mutation's base-level change survives the repair: a fact
// whose AddFact or DeleteFact propagation was cut short is present in
// (or absent from) the healed view's answers.
type View struct {
	mu      sync.Mutex
	m       *eval.Materialized
	col     *stats.Collector
	repairs int
}

// Materialize computes all IDB relations of the engine's current program
// over its current facts and returns a maintainable view.
func (e *Engine) Materialize() (*View, error) {
	return e.MaterializeCtx(context.Background())
}

// MaterializeCtx is Materialize under ctx and the WithBudget / WithDeadline
// options (other options are ignored). The context and deadline govern the
// initial computation only; the tuple, round, and byte limits are
// cumulative across the initial computation and all later incremental
// maintenance through the view. An abort during the initial computation
// leaves no view; an abort while propagating a later AddFact or DeleteFact
// marks the view broken, and the next access repairs it (see View.Broken).
// The initial computation counts against the engine's WithMaxConcurrent
// admission limit like a query, and reads a consistent snapshot of the
// engine's facts even while writers run.
func (e *Engine) MaterializeCtx(ctx context.Context, opts ...QueryOption) (*View, error) {
	cfg := queryConfig{strategy: Auto}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.deadline)
		defer cancel()
	}
	release, err := e.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	bud := cfg.tracker(ctx)
	if err := bud.Err(); err != nil {
		return nil, err
	}
	bud.SetStrategy(string(Materialized))
	col := stats.New()
	st, db, _ := e.snapshot()
	m, err := eval.MaterializeBudget(st.prog, db, col, bud)
	if err != nil {
		return nil, err
	}
	// The build's context (and any WithDeadline timer, canceled above on
	// return) must not poison maintenance performed later.
	bud.DetachContext()
	return &View{m: m, col: col}, nil
}

// Broken reports the error that interrupted a mutation mid-propagation, if
// any. A broken view's derived relations may be half-updated, so the next
// AddFact, DeleteFact, or Query first rebuilds them from the base
// relations (self-healing); Broken itself only inspects, never repairs.
func (v *View) Broken() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.m.Broken()
}

// Repairs returns how many times the view has self-healed.
func (v *View) Repairs() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.repairs
}

// healLocked repairs a broken view before an access proceeds. Callers hold
// v.mu. The repair resets the cumulative budget (the rebuild replaces all
// previously accounted work) and rebuilds the derived relations from the
// base relations, which always fully reflect every requested mutation.
func (v *View) healLocked() error {
	if v.m.Broken() == nil {
		return nil
	}
	if err := v.m.Repair(); err != nil {
		return err
	}
	v.repairs++
	return nil
}

// AddFact inserts a base fact into the view and propagates its
// consequences incrementally. It reports whether the fact was new.
func (v *View) AddFact(pred string, args ...string) (bool, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if err := v.healLocked(); err != nil {
		return false, err
	}
	return v.m.AddFact(pred, args...)
}

// Query answers a query directly from the maintained relations. It takes
// an immutable snapshot under the view lock and evaluates outside it, so
// concurrent queries do not serialize on each other's evaluation and a
// concurrent AddFact/DeleteFact is observed either fully or not at all.
func (v *View) Query(query string) (*Result, error) {
	q, err := parser.Query(query)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	v.mu.Lock()
	if err := v.healLocked(); err != nil {
		v.mu.Unlock()
		return nil, err
	}
	snap, err := v.m.SnapshotView()
	if err != nil {
		v.mu.Unlock()
		return nil, err
	}
	st := Stats{
		Strategy:      Materialized,
		RelationSizes: v.col.SizesCopy(),
		Iterations:    v.col.Iterations,
		Inserted:      v.col.Inserted,
	}
	st.MaxRelation, st.MaxRelationSize = v.col.MaxRelation()
	v.mu.Unlock()

	ans, err := eval.Answer(snap, q)
	if err != nil {
		return nil, err
	}
	st.Duration = time.Since(start)
	return &Result{
		Columns: eval.QueryVars(q),
		Stats:   st,
		rel:     ans,
		db:      snap,
	}, nil
}

// DeleteFact removes a base fact from the view and maintains the derived
// relations with delete-and-rederive (DRed). It reports whether the fact
// was present.
func (v *View) DeleteFact(pred string, args ...string) (bool, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if err := v.healLocked(); err != nil {
		return false, err
	}
	return v.m.DeleteFact(pred, args...)
}
