package sepdl

import (
	"errors"
	"sync"
	"testing"
	"time"

	"sepdl/internal/leakcheck"
)

// TestDrainTypedError pins the runtime drain switch: after Drain every
// query fails with an error matching both ErrOverloaded and ErrDraining
// (plus the *OverloadError shape), and Resume restores service.
func TestDrainTypedError(t *testing.T) {
	leakcheck.Check(t)
	e := chainEngineOpts(t, 5)

	e.Drain()
	if !e.Draining() {
		t.Fatal("Draining() = false after Drain")
	}
	_, err := e.Query(`buys(a00, Y)?`)
	if !errors.Is(err, ErrDraining) || !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrDraining and ErrOverloaded", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || !oe.Draining {
		t.Fatalf("err = %#v, want OverloadError{Draining: true}", err)
	}

	// Drain is idempotent; Resume flips back.
	e.Drain()
	e.Resume()
	if e.Draining() {
		t.Fatal("Draining() = true after Resume")
	}
	res, err := e.Query(`buys(a00, Y)?`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 5 {
		t.Fatalf("answers = %d, want 5", res.Len())
	}

	st := e.Stats()
	if st.DrainRejections != 1 || st.Overloads != 1 {
		t.Fatalf("counters = %+v, want 1 drain rejection / 1 overload", st)
	}
}

// TestDrainWakesQueuedWaiters pins the hard case: a query already queued
// at the admission gate when Drain flips must wake and fail typed — not
// wait for a slot that will never be granted to it.
func TestDrainWakesQueuedWaiters(t *testing.T) {
	leakcheck.Check(t)
	e := chainEngineOpts(t, 5, WithMaxConcurrent(1), WithAdmissionWait(30*time.Second))
	entered, release := blockEval(t, 1)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := e.Query(`buys(a00, Y)?`); err != nil {
			t.Error(err)
		}
	}()
	<-entered // the slot is held mid-evaluation

	queued := make(chan error, 1)
	go func() {
		_, err := e.Query(`buys(a01, Y)?`)
		queued <- err
	}()
	// Let the second query park at the gate, then drain. If the sleep ever
	// proves too short the query still fails typed — it just exercises the
	// pre-queue drain check instead of the wakeup path.
	time.Sleep(10 * time.Millisecond)
	e.Drain()

	err := <-queued
	if !errors.Is(err, ErrDraining) {
		t.Fatalf("queued query err = %v, want ErrDraining", err)
	}

	// The admitted query must run to completion despite the drain.
	close(release)
	wg.Wait()
	if got := e.Stats().InFlight; got != 0 {
		t.Fatalf("InFlight = %d", got)
	}
}

// TestPreparedDrainRace pins the satellite case: Prepare succeeds, drain
// begins, Run must fail with the typed drain error — promptly, no hang,
// no panic — and the handle works again after Resume.
func TestPreparedDrainRace(t *testing.T) {
	leakcheck.Check(t)
	e := chainEngineOpts(t, 5)

	p, err := e.Prepare(`buys(a00, Y)?`)
	if err != nil {
		t.Fatal(err)
	}
	e.Drain()
	_, err = p.Run(t.Context(), "a00")
	if !errors.Is(err, ErrDraining) {
		t.Fatalf("Run during drain: %v, want ErrDraining", err)
	}
	// Batch execution is shed the same way.
	_, err = p.RunBatch(t.Context(), []string{"a00"}, []string{"a01"})
	if !errors.Is(err, ErrDraining) {
		t.Fatalf("RunBatch during drain: %v, want ErrDraining", err)
	}

	e.Resume()
	res, err := p.Run(t.Context(), "a00")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 5 {
		t.Fatalf("answers = %d, want 5", res.Len())
	}
}

// TestEngineStatsCounters pins the aggregate counter accounting: queries,
// errors, cache hits, and the in-flight gauge returning to zero.
func TestEngineStatsCounters(t *testing.T) {
	leakcheck.Check(t)
	e := chainEngineOpts(t, 5)

	if _, err := e.Query(`buys(a00, Y)?`); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query(`buys(a00, Y)?`); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query(`buys(a00, Y)?`, WithBudget(Budget{MaxTuples: 1})); err == nil {
		t.Fatal("tuple-capped query succeeded")
	}

	st := e.Stats()
	if st.Queries != 3 || st.QueryErrors != 1 || st.BudgetAborts != 1 {
		t.Fatalf("counters = %+v, want 3 queries / 1 error / 1 budget abort", st)
	}
	if st.PlanCacheHits == 0 {
		t.Fatalf("counters = %+v, want a plan-cache hit on the repeat query", st)
	}
	if st.InFlight != 0 {
		t.Fatalf("InFlight = %d", st.InFlight)
	}
}
