package sepdl

// Parallel-vs-sequential equivalence at the public API: every strategy, on
// every corpus entry and testdata program, must return byte-identical
// sorted answers whether the engine evaluates with one worker or many.
// Budget aborts and deadlines must surface the same typed errors either
// way.

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"
)

// parallelPair builds two engines over the same program and facts: one
// pinned to sequential evaluation, one with eight workers and the
// work-size floor removed so even tiny programs take the parallel paths.
func parallelPair(t *testing.T, program, facts string) (seq, par *Engine) {
	t.Helper()
	seq = New(WithParallelism(1))
	par = New(WithParallelism(8), WithParallelThreshold(-1))
	for _, e := range []*Engine{seq, par} {
		if err := e.LoadProgram(program); err != nil {
			t.Fatal(err)
		}
		if err := e.LoadFacts(facts); err != nil {
			t.Fatal(err)
		}
	}
	return seq, par
}

// checkQueryParity runs one query on both engines under one strategy and
// requires parity: both fail (scope rejections stay scope rejections) or
// both succeed with byte-identical sorted output.
func checkQueryParity(t *testing.T, seq, par *Engine, query string, opts ...QueryOption) {
	t.Helper()
	sRes, sErr := seq.Query(query, opts...)
	pRes, pErr := par.Query(query, opts...)
	if (sErr == nil) != (pErr == nil) {
		t.Errorf("%s: error parity broken: sequential err = %v, parallel err = %v", query, sErr, pErr)
		return
	}
	if sErr != nil {
		return
	}
	if sRes.String() != pRes.String() {
		t.Errorf("%s: parallel = %s, sequential = %s", query, pRes, sRes)
	}
}

func TestParallelMatchesSequentialCorpus(t *testing.T) {
	strategies := []Strategy{
		Separable, MagicSets, MagicSetsSup, Counting, HenschenNaqvi,
		AhoUllman, Tabling, SemiNaive, Naive,
	}
	for _, entry := range corpus {
		entry := entry
		t.Run(entry.name, func(t *testing.T) {
			seq, par := parallelPair(t, entry.program, entry.facts)
			for _, query := range entry.queries {
				for _, s := range strategies {
					checkQueryParity(t, seq, par, query, WithStrategy(s))
				}
				checkQueryParity(t, seq, par, query) // Auto
			}
		})
	}
}

func TestParallelMatchesSequentialTestdata(t *testing.T) {
	prog, err := os.ReadFile("testdata/buys.dl")
	if err != nil {
		t.Fatal(err)
	}
	facts, err := os.ReadFile("testdata/buys_facts.dl")
	if err != nil {
		t.Fatal(err)
	}
	seq, par := parallelPair(t, string(prog), string(facts))
	for _, query := range []string{
		`buys(tom, Y)?`, `buys(sue, Y)?`, `buys(X, radio)?`, `buys(harry, radio)?`,
	} {
		for _, s := range []Strategy{Auto, Separable, MagicSets, SemiNaive} {
			checkQueryParity(t, seq, par, query, WithStrategy(s))
		}
	}

	nonsep, err := os.ReadFile("testdata/nonseparable.dl")
	if err != nil {
		t.Fatal(err)
	}
	seq, par = parallelPair(t, string(nonsep), `
sibling(a, b).
parent(p1, a). parent(p1, c). parent(p2, b). parent(p2, d).
`)
	for _, query := range []string{`sg(a, Y)?`, `sg(X, Y)?`, `sg(c, d)?`} {
		for _, s := range []Strategy{Auto, MagicSets, SemiNaive, Naive} {
			checkQueryParity(t, seq, par, query, WithStrategy(s))
		}
	}
}

// TestParallelMatchesSequentialMultiClass drives the product evaluator on
// the benchmark's 4-class family through the public API.
func TestParallelMatchesSequentialMultiClass(t *testing.T) {
	const n, c = 5, 4
	program := `
t(X1, X2, X3, X4) :- e1(X1, W) & t(W, X2, X3, X4).
t(X1, X2, X3, X4) :- e2(X2, W) & t(X1, W, X3, X4).
t(X1, X2, X3, X4) :- e3(X3, W) & t(X1, X2, W, X4).
t(X1, X2, X3, X4) :- e4(X4, W) & t(X1, X2, X3, W).
t(X1, X2, X3, X4) :- t0(X1, X2, X3, X4).
`
	var sb strings.Builder
	ends := make([]string, 0, c)
	for i := 1; i <= c; i++ {
		for j := 1; j < n; j++ {
			fmt.Fprintf(&sb, "e%d(c%dv%d, c%dv%d).\n", i, i, j, i, j+1)
		}
		ends = append(ends, fmt.Sprintf("c%dv%d", i, n))
	}
	fmt.Fprintf(&sb, "t0(%s).\n", strings.Join(ends, ", "))
	seq, par := parallelPair(t, program, sb.String())

	for _, query := range []string{
		`t(c1v1, Y2, Y3, Y4)?`,
		`t(c1v1, c2v2, Y3, Y4)?`,
		`t(X, Y, Z, c4v1)?`,
	} {
		for _, s := range []Strategy{Auto, Separable, SemiNaive} {
			checkQueryParity(t, seq, par, query, WithStrategy(s))
		}
	}
	// Sanity: the driver-selection query really has its product shape.
	res, err := par.Query(`t(c1v1, Y2, Y3, Y4)?`, WithStrategy(Separable))
	if err != nil {
		t.Fatal(err)
	}
	if want := n * n * n; res.Len() != want {
		t.Errorf("answers = %d, want %d", res.Len(), want)
	}
}

// TestParallelBudgetAbortParity reuses the per-strategy budget cases: a
// parallel engine must abort with the same typed error, limit kind, and
// strategy tag as the sequential engines in budget_api_test.go.
func TestParallelBudgetAbortParity(t *testing.T) {
	e := New(WithParallelism(8), WithParallelThreshold(-1))
	if err := e.LoadProgram(`
buys(X, Y) :- friend(X, W) & buys(W, Y).
buys(X, Y) :- perfectFor(X, Y).
`); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	const n = 30
	for i := 0; i+1 < n; i++ {
		fmt.Fprintf(&sb, "friend(a%02d, a%02d).\n", i, i+1)
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "perfectFor(a%02d, g%02d).\n", i, i)
	}
	if err := e.LoadFacts(sb.String()); err != nil {
		t.Fatal(err)
	}
	for _, tc := range budgetCases {
		tc := tc
		t.Run(string(tc.strategy), func(t *testing.T) {
			// Unbudgeted sanity first.
			if _, err := e.Query(tc.query, WithStrategy(tc.strategy)); err != nil {
				t.Fatalf("unbudgeted: %v", err)
			}
			_, err := e.Query(tc.query, WithStrategy(tc.strategy), WithBudget(Budget{MaxTuples: 1}))
			if !errors.Is(err, ErrBudgetExceeded) {
				t.Fatalf("err = %v, want ErrBudgetExceeded", err)
			}
			var re *ResourceError
			if !errors.As(err, &re) {
				t.Fatalf("err = %v, want *ResourceError", err)
			}
			if re.Limit != LimitTuples {
				t.Errorf("Limit = %s, want %s", re.Limit, LimitTuples)
			}
			if re.Strategy != string(tc.strategy) {
				t.Errorf("Strategy = %s, want %s", re.Strategy, tc.strategy)
			}
		})
	}
}
