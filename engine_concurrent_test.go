package sepdl

// Tests for the engine's concurrent-serving behavior: snapshot-isolated
// queries racing writers, admission control, strategy fallback, and
// self-healing views. The stress tests are tier-1 (they run under the
// -race gate of `make verify`); `make stress` additionally repeats them.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"sepdl/internal/leakcheck"
)

// mustPrefix fails the test unless every row is a single goal g%02d and
// the rows form the contiguous prefix g00..g<m>: the snapshot invariant.
// A torn read (a goal visible while an earlier one is missing) breaks
// contiguity. It reports rather than aborts so reader goroutines can use
// it; callers should stop on false.
func mustPrefix(t *testing.T, rows [][]string, atLeast int) bool {
	t.Helper()
	if len(rows) < atLeast {
		t.Errorf("answers = %d rows, want at least %d", len(rows), atLeast)
		return false
	}
	for i, row := range rows {
		if len(row) != 1 || row[0] != fmt.Sprintf("g%02d", i) {
			t.Errorf("row %d = %v, want [g%02d]: answer set is not a contiguous prefix", i, row, i)
			return false
		}
	}
	return true
}

func TestConcurrentReadersWritersSnapshotIsolation(t *testing.T) {
	leakcheck.Check(t)
	const (
		initial = 10
		grow    = 50
		readers = 8
	)
	e := chainEngine(t, initial)

	var wg sync.WaitGroup  // writer 1 + readers
	var wg2 sync.WaitGroup // writer 2 (runs until the others finish)
	stop := make(chan struct{})

	// Writer 1 extends the chain: friend(a_k, a_{k+1}) then
	// perfectFor(a_{k+1}, g_{k+1}). Every reader snapshot sees a prefix of
	// this growth, so its answer set is always a contiguous prefix of goals.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := initial - 1; k < initial-1+grow; k++ {
			if err := e.AddFact("friend", fmt.Sprintf("a%02d", k), fmt.Sprintf("a%02d", k+1)); err != nil {
				t.Error(err)
				return
			}
			if err := e.AddFact("perfectFor", fmt.Sprintf("a%02d", k+1), fmt.Sprintf("g%02d", k+1)); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Writer 2 churns an unrelated relation (including creating it, so
	// snapshots race relation-map growth too) and runs Materialize loops,
	// which snapshot the whole database mid-write.
	wg2.Add(1)
	go func() {
		defer wg2.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := e.AddFact("noise", fmt.Sprintf("w%03d", i), fmt.Sprintf("w%03d", i+1)); err != nil {
				t.Error(err)
				return
			}
			if i%10 == 0 {
				v, err := e.Materialize()
				if err != nil {
					t.Error(err)
					return
				}
				res, err := v.Query(`buys(a00, Y)?`)
				if err != nil {
					t.Error(err)
					return
				}
				if !mustPrefix(t, res.Rows(), initial) {
					return
				}
			}
		}
	}()

	// Readers hammer the engine across strategies; every answer set must be
	// a contiguous prefix at least as long as the initial chain.
	strategies := []Strategy{Auto, Separable, MagicSets, SemiNaive, Tabling}
	for r := 0; r < readers; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 30; iter++ {
				s := strategies[(r+iter)%len(strategies)]
				res, err := e.QueryCtx(context.Background(), `buys(a00, Y)?`, WithStrategy(s))
				if err != nil {
					t.Errorf("reader %d (%s): %v", r, s, err)
					return
				}
				if !mustPrefix(t, res.Rows(), initial) {
					return
				}
			}
		}()
	}

	wg.Wait()   // writer 1 + readers done
	close(stop) // stop writer 2
	wg2.Wait()

	// After all writers quiesce the chain is complete.
	res, err := e.Query(`buys(a00, Y)?`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != initial+grow {
		t.Fatalf("final answers = %d, want %d", res.Len(), initial+grow)
	}
	mustPrefix(t, res.Rows(), initial+grow)
}

func TestConcurrentViewReadersWriters(t *testing.T) {
	leakcheck.Check(t)
	e := chainEngine(t, 10)
	v, err := e.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	// Two writers alternately add and remove disjoint chain extensions
	// through the view; eight readers assert the prefix invariant on every
	// snapshot they query.
	for w := 0; w < 2; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			from := fmt.Sprintf("a%02d", 9)
			node := fmt.Sprintf("ext%d", w)
			goal := fmt.Sprintf("h%d", w)
			for i := 0; i < 25; i++ {
				if _, err := v.AddFact("friend", from, node); err != nil {
					t.Error(err)
					return
				}
				if _, err := v.DeleteFact("friend", from, node); err != nil {
					t.Error(err)
					return
				}
				_ = goal
			}
		}()
	}
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				res, err := v.Query(`buys(a00, Y)?`)
				if err != nil {
					t.Error(err)
					return
				}
				// The writers only toggle dead-end extensions, so the goal
				// set is always exactly g00..g09.
				if !mustPrefix(t, res.Rows(), 10) {
					return
				}
				if res.Len() != 10 {
					t.Errorf("answers = %d, want 10", res.Len())
					return
				}
			}
		}()
	}
	wg.Wait()
}

// blockEval installs a testHookEval that parks every admitted query until
// release is closed, reporting each arrival on entered.
func blockEval(t *testing.T, capacity int) (entered chan struct{}, release chan struct{}) {
	t.Helper()
	entered = make(chan struct{}, capacity)
	release = make(chan struct{})
	testHookEval = func() {
		entered <- struct{}{}
		<-release
	}
	t.Cleanup(func() { testHookEval = nil })
	return entered, release
}

func TestConcurrentAdmissionImmediateReject(t *testing.T) {
	leakcheck.Check(t)
	e2 := chainEngineOpts(t, 5, WithMaxConcurrent(2))

	entered, release := blockEval(t, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := e2.Query(`buys(a00, Y)?`); err != nil {
				t.Error(err)
			}
		}()
	}
	<-entered
	<-entered // both slots held mid-evaluation

	// No admission wait, no deadline: the third query is shed immediately.
	_, err := e2.Query(`buys(a00, Y)?`)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.MaxConcurrent != 2 {
		t.Fatalf("err = %#v, want OverloadError{MaxConcurrent: 2}", err)
	}
	if !strings.Contains(err.Error(), "overloaded") {
		t.Fatalf("error text %q does not say overloaded", err)
	}

	close(release)
	wg.Wait()

	// Slots freed: queries are admitted again.
	testHookEval = nil
	res, err := e2.Query(`buys(a00, Y)?`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 5 {
		t.Fatalf("answers = %d, want 5", res.Len())
	}
}

func TestConcurrentAdmissionDeadlineWhileQueued(t *testing.T) {
	leakcheck.Check(t)
	e := chainEngineOpts(t, 5, WithMaxConcurrent(1))
	entered, release := blockEval(t, 1)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := e.Query(`buys(a00, Y)?`); err != nil {
			t.Error(err)
		}
	}()
	<-entered

	// The queued query's own deadline bounds its wait for a slot.
	start := time.Now()
	_, err := e.Query(`buys(a00, Y)?`, WithDeadline(30*time.Millisecond))
	waited := time.Since(start)
	close(release) // unblock the slot holder before asserting
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded as cause", err)
	}
	if waited < 25*time.Millisecond {
		t.Fatalf("rejected after %v, should have queued for the deadline", waited)
	}
	wg.Wait()
}

func TestConcurrentAdmissionWaitElapsesAndSlotFrees(t *testing.T) {
	leakcheck.Check(t)
	e := chainEngineOpts(t, 5, WithMaxConcurrent(1), WithAdmissionWait(30*time.Millisecond))
	entered, release := blockEval(t, 1)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := e.Query(`buys(a00, Y)?`); err != nil {
			t.Error(err)
		}
	}()
	<-entered

	// The admission wait elapses with the slot still held.
	_, err := e.Query(`buys(a00, Y)?`)
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("err = %v, want *OverloadError", err)
	}
	if oe.Waited < 25*time.Millisecond || oe.Cause != nil {
		t.Fatalf("OverloadError = %+v, want Waited >= admission wait and no cause", oe)
	}

	// A queued query gets the slot when it frees within the wait.
	var wg2 sync.WaitGroup
	wg2.Add(1)
	errc := make(chan error, 1)
	go func() {
		defer wg2.Done()
		// Once release closes the hook passes straight through.
		_, err := e.Query(`buys(a00, Y)?`)
		errc <- err
	}()
	time.Sleep(5 * time.Millisecond) // let it queue
	close(release)                   // first query finishes, slot frees
	wg.Wait()
	wg2.Wait()
	if err := <-errc; err != nil {
		t.Fatalf("queued query after slot freed: %v", err)
	}
}

func TestConcurrentAdmissionDrainMode(t *testing.T) {
	e := chainEngineOpts(t, 5, WithMaxConcurrent(-1))
	_, err := e.Query(`buys(a00, Y)?`)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if !strings.Contains(err.Error(), "draining") {
		t.Fatalf("error text %q does not mention draining", err)
	}
	// Materialize is admission-gated too.
	if _, err := e.Materialize(); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("Materialize err = %v, want ErrOverloaded", err)
	}
}

// chainEngineOpts is chainEngine with engine options.
func chainEngineOpts(t *testing.T, n int, opts ...EngineOption) *Engine {
	t.Helper()
	e := New(opts...)
	if err := e.LoadProgram(`
buys(X, Y) :- friend(X, W) & buys(W, Y).
buys(X, Y) :- perfectFor(X, Y).
`); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for i := 0; i+1 < n; i++ {
		fmt.Fprintf(&sb, "friend(a%02d, a%02d).\n", i, i+1)
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "perfectFor(a%02d, g%02d).\n", i, i)
	}
	if err := e.LoadFacts(sb.String()); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestFallbackMagicToSemiNaive(t *testing.T) {
	// Self-calibrating: semi-naive's unbudgeted insertion count is the
	// budget. Magic inserts strictly more on this query (the full closure
	// plus the magic and supplementary relations), so it trips; semi-naive
	// fits exactly (the check is consumed > max).
	e := chainEngine(t, 60)
	base, err := e.Query(`buys(a00, Y)?`, WithStrategy(SemiNaive))
	if err != nil {
		t.Fatal(err)
	}
	maxT := base.Stats.Inserted

	// Sanity: without fallback the budget does trip magic.
	_, err = e.Query(`buys(a00, Y)?`, WithStrategy(MagicSets), WithBudget(Budget{MaxTuples: maxT}))
	var re *ResourceError
	if !errors.As(err, &re) || re.Limit != LimitTuples {
		t.Fatalf("magic without fallback: err = %v, want tuples ResourceError", err)
	}

	res, err := e.Query(`buys(a00, Y)?`,
		WithStrategy(MagicSets), WithBudget(Budget{MaxTuples: maxT}), WithFallback())
	if err != nil {
		t.Fatalf("with fallback: %v", err)
	}
	if res.Len() != 60 {
		t.Fatalf("answers = %d, want 60", res.Len())
	}
	if res.Stats.Strategy != SemiNaive || res.Stats.FallbackFrom != MagicSets {
		t.Fatalf("Stats = {Strategy: %s, FallbackFrom: %s}, want {seminaive, magic}",
			res.Stats.Strategy, res.Stats.FallbackFrom)
	}
}

func TestFallbackCountingCycle(t *testing.T) {
	// The Ω(2ⁿ) counting blowup on a cyclic database (see the adversarial
	// budget tests): with fallback, the query still answers.
	e := New()
	if err := e.LoadProgram(`
buys(X, Y) :- friend(X, W) & buys(W, Y).
buys(X, Y) :- idol(X, W) & buys(W, Y).
buys(X, Y) :- perfectFor(X, Y).
`); err != nil {
		t.Fatal(err)
	}
	if err := e.LoadFacts(`
friend(a, b). friend(b, a).
idol(a, b). idol(b, a).
perfectFor(a, g). perfectFor(b, g).
`); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query(`buys(a, Y)?`,
		WithStrategy(Counting), WithMaxIterations(1<<20),
		WithBudget(Budget{MaxTuples: 500}), WithFallback())
	if err != nil {
		t.Fatalf("with fallback: %v", err)
	}
	if res.String() != "{(g)}" {
		t.Fatalf("answers = %s, want {(g)}", res)
	}
	if res.Stats.Strategy != SemiNaive || res.Stats.FallbackFrom != Counting {
		t.Fatalf("Stats = {Strategy: %s, FallbackFrom: %s}, want {seminaive, counting}",
			res.Stats.Strategy, res.Stats.FallbackFrom)
	}
}

func TestFallbackFirstStrategySucceeds(t *testing.T) {
	// When the compiled strategy fits its budget, no fallback happens and
	// FallbackFrom stays empty.
	e := chainEngine(t, 10)
	res, err := e.Query(`buys(a00, Y)?`, WithStrategy(Separable),
		WithBudget(Budget{MaxTuples: 1000}), WithFallback())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Strategy != Separable || res.Stats.FallbackFrom != "" {
		t.Fatalf("Stats = {Strategy: %s, FallbackFrom: %q}, want {separable, \"\"}",
			res.Stats.Strategy, res.Stats.FallbackFrom)
	}
}

func TestFallbackSkippedOnDeadline(t *testing.T) {
	// Deadline expiry must not trigger a retry: there is no time left to
	// retry with.
	e := chainEngine(t, 10)
	testHookEval = func() { time.Sleep(40 * time.Millisecond) }
	defer func() { testHookEval = nil }()
	_, err := e.Query(`buys(a00, Y)?`,
		WithStrategy(MagicSets), WithDeadline(10*time.Millisecond), WithFallback())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if strings.Contains(err.Error(), "fallback") {
		t.Fatalf("error %q suggests a fallback ran on deadline expiry", err)
	}
}

func TestFallbackAlsoFails(t *testing.T) {
	// A budget too small for either strategy reports both failures,
	// keeping the original strategy's typed error.
	e := chainEngine(t, 60)
	_, err := e.Query(`buys(a00, Y)?`,
		WithStrategy(MagicSets), WithBudget(Budget{MaxTuples: 10}), WithFallback())
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	var re *ResourceError
	if !errors.As(err, &re) || re.Strategy != string(MagicSets) {
		t.Fatalf("err = %v, want the original magic ResourceError", err)
	}
	if !strings.Contains(err.Error(), "semi-naive fallback also failed") {
		t.Fatalf("error %q does not report the failed fallback", err)
	}
}

func TestFallbackNotOnSemiNaive(t *testing.T) {
	// SemiNaive does not fall back to itself; the budget error surfaces.
	e := chainEngine(t, 60)
	_, err := e.Query(`buys(a00, Y)?`,
		WithStrategy(SemiNaive), WithBudget(Budget{MaxTuples: 10}), WithFallback())
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if strings.Contains(err.Error(), "fallback") {
		t.Fatalf("error %q suggests seminaive fell back", err)
	}
}

// doubledChainEngine builds a graph with two disjoint paths between each
// pair of consecutive hubs (a_i → {x_i, y_i} → a_{i+1}), so deleting one
// edge triggers a DRed over-delete/re-derive pass whose churn far exceeds
// the net change: every upstream derivation is suspected and must be
// re-derived through the surviving path.
func doubledChainEngine(t *testing.T, hubs int) *Engine {
	t.Helper()
	e := New()
	if err := e.LoadProgram(`
buys(X, Y) :- friend(X, W) & buys(W, Y).
buys(X, Y) :- perfectFor(X, Y).
`); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for i := 0; i+1 < hubs; i++ {
		fmt.Fprintf(&sb, "friend(a%02d, x%02d).\n", i, i)
		fmt.Fprintf(&sb, "friend(x%02d, a%02d).\n", i, i+1)
		fmt.Fprintf(&sb, "friend(a%02d, y%02d).\n", i, i)
		fmt.Fprintf(&sb, "friend(y%02d, a%02d).\n", i, i+1)
	}
	fmt.Fprintf(&sb, "perfectFor(a%02d, g).\n", hubs-1)
	if err := e.LoadFacts(sb.String()); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestViewSelfHealsAfterBudgetAbort(t *testing.T) {
	e := doubledChainEngine(t, 6) // nodes a00..a05, x00..x04, y00..y04: 16 buyers of g
	// Calibrate the cumulative budget: the initial build fits, the DRed
	// re-derivation churn on top of it does not, but after a reset a full
	// rebuild fits again. The build inserts one buys tuple per node (16);
	// deleting friend(a04, x04) suspects nearly every derivation upstream
	// of a04 and re-derives it through the y04 path (~12 insertions).
	v, err := e.MaterializeCtx(context.Background(), WithBudget(Budget{MaxTuples: 20}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := v.Query(`buys(a00, Y)?`)
	if err != nil {
		t.Fatal(err)
	}
	if res.String() != "{(g)}" {
		t.Fatalf("before delete: %s, want {(g)}", res)
	}

	// The deletion's DRed pass trips the cumulative budget mid-rederivation.
	_, err = v.DeleteFact("friend", "a04", "x04")
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("DeleteFact err = %v, want ErrBudgetExceeded (calibration off?)", err)
	}
	if v.Broken() == nil {
		t.Fatal("view not marked broken after mid-mutation abort")
	}

	// Next access self-heals: the budget resets and the view rebuilds from
	// the base relations, which already include the deletion. Every node
	// still reaches g through the surviving y-path.
	res, err = v.Query(`buys(a00, Y)?`)
	if err != nil {
		t.Fatalf("query after self-heal: %v", err)
	}
	if res.String() != "{(g)}" {
		t.Fatalf("after self-heal: %s, want {(g)}", res)
	}
	if err := v.Broken(); err != nil {
		t.Fatalf("Broken() after self-heal = %v, want nil", err)
	}
	if v.Repairs() != 1 {
		t.Fatalf("Repairs() = %d, want 1", v.Repairs())
	}
	// The interrupted deletion's base-level change survived the heal: only
	// the y04 edge remains out of a04.
	res, err = v.Query(`friend(a04, Y)?`)
	if err != nil {
		t.Fatal(err)
	}
	if res.String() != "{(y04)}" {
		t.Fatalf("friend(a04, Y) after heal = %s, want {(y04)}", res)
	}
	// Maintenance works again after the heal (within the reset budget).
	if _, err := v.DeleteFact("perfectFor", "a05", "g"); err == nil {
		// Deleting the only goal empties the view; depending on churn this
		// may or may not trip the budget again — both are acceptable here,
		// but an abort must mark it broken for the next self-heal.
	} else if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("DeleteFact after heal: %v", err)
	}
}

func TestViewSelfHealsOnMutationAccess(t *testing.T) {
	// A broken view also heals when the next access is a mutation, not a
	// query.
	e := doubledChainEngine(t, 6)
	v, err := e.MaterializeCtx(context.Background(), WithBudget(Budget{MaxTuples: 20}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err = v.DeleteFact("friend", "a04", "x04"); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("DeleteFact err = %v, want ErrBudgetExceeded", err)
	}
	if v.Broken() == nil {
		t.Fatal("view not broken")
	}
	// AddFact heals first, then applies.
	if _, err := v.AddFact("perfectFor", "a00", "h"); err != nil {
		t.Fatalf("AddFact on broken view did not self-heal: %v", err)
	}
	if v.Repairs() != 1 {
		t.Fatalf("Repairs() = %d, want 1", v.Repairs())
	}
	res, err := v.Query(`buys(a00, Y)?`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("answers = %d, want 2 (g and h)", res.Len())
	}
}

func TestSnapshotResultStableAfterWrite(t *testing.T) {
	// A Result handed out by a query is a stable snapshot: later AddFact
	// calls do not change its rows.
	e := chainEngine(t, 5)
	res, err := e.Query(`buys(a00, Y)?`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 5 {
		t.Fatalf("answers = %d, want 5", res.Len())
	}
	if err := e.AddFact("perfectFor", "a00", "extra"); err != nil {
		t.Fatal(err)
	}
	if res.Len() != 5 {
		t.Fatalf("result changed after AddFact: %d rows", res.Len())
	}
	res2, err := e.Query(`buys(a00, Y)?`)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Len() != 6 {
		t.Fatalf("new query answers = %d, want 6", res2.Len())
	}
}

func TestLoadProgramConcurrentWithQueries(t *testing.T) {
	leakcheck.Check(t)
	// Program swaps race queries: each query keeps the revision it started
	// with, so answers are from either the old or the new program, never a
	// mix, and the analysis cache never poisons across revisions.
	e := chainEngine(t, 8)
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				res, err := e.Query(`buys(a00, Y)?`)
				if err != nil {
					t.Error(err)
					return
				}
				// 8 goals with the recursive program, 1 with only the base
				// rule, 0 in the window where ClearProgram has run and
				// buys is momentarily a (nonexistent) base predicate.
				if n := res.Len(); n != 8 && n != 1 && n != 0 {
					t.Errorf("answers = %d, want 8, 1, or 0", n)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			e.ClearProgram()
			prog := `buys(X, Y) :- perfectFor(X, Y).`
			if i%2 == 0 {
				prog = `
buys(X, Y) :- friend(X, W) & buys(W, Y).
buys(X, Y) :- perfectFor(X, Y).
`
			}
			if err := e.LoadProgram(prog); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
}
