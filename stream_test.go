package sepdl

// Streaming-executor equivalence: the streaming round pipeline must be
// byte-identical to the materializing ablation on every corpus entry
// under every strategy, and the deprecated WithParallelThreshold override
// must keep its documented semantics.

import "testing"

// TestStreamingMaterializedEquivalence runs the integration corpus under
// all nine strategies twice — streaming (the default) and with
// withMaterializedRounds() restoring the pre-iterator pipeline — and
// requires byte-identical rendered results. Scope rejections must be
// identical too: streaming may not change which queries a strategy
// accepts.
func TestStreamingMaterializedEquivalence(t *testing.T) {
	strategies := []Strategy{
		Separable, MagicSets, MagicSetsSup, Counting, HenschenNaqvi,
		AhoUllman, Tabling, SemiNaive, Naive,
	}
	for _, entry := range corpus {
		entry := entry
		t.Run(entry.name, func(t *testing.T) {
			e := New()
			if err := e.LoadProgram(entry.program); err != nil {
				t.Fatal(err)
			}
			if err := e.LoadFacts(entry.facts); err != nil {
				t.Fatal(err)
			}
			for _, query := range entry.queries {
				for _, s := range strategies {
					stream, serr := e.Query(query, WithStrategy(s))
					mat, merr := e.Query(query, WithStrategy(s), withMaterializedRounds())
					if (serr == nil) != (merr == nil) {
						t.Errorf("%s [%s]: streaming err %v, materialized err %v", query, s, serr, merr)
						continue
					}
					if serr != nil {
						continue // both rejected: scope error, fine
					}
					if stream.String() != mat.String() {
						t.Errorf("%s [%s]: streaming %s, materialized %s", query, s, stream, mat)
					}
				}
			}
		})
	}
}

// TestParallelThresholdOverride pins the deprecated WithParallelThreshold
// semantics against the adaptive default: zero gates each round by
// estimated emissions, a positive value restores the fixed work floor, a
// negative value removes the gate entirely. All three must answer
// identically; the knob only moves where fan-out happens.
func TestParallelThresholdOverride(t *testing.T) {
	const program = `
path(X, Y) :- e(X, W) & path(W, Y).
path(X, Y) :- e(X, Y).
`
	const facts = `
e(a, b). e(b, c). e(c, d). e(d, e1). e(e1, f). e(a, c). e(b, d).
`
	ref := ""
	for _, tc := range []struct {
		name      string
		threshold int
	}{
		{"adaptive-default", 0},
		{"static-floor-deprecated", 1}, // every round clears the floor: always parallel
		{"static-floor-huge", 1 << 20}, // no round clears the floor: never parallel
		{"gate-disabled", -1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e := New(WithParallelism(2), WithParallelThreshold(tc.threshold))
			if err := e.LoadProgram(program); err != nil {
				t.Fatal(err)
			}
			if err := e.LoadFacts(facts); err != nil {
				t.Fatal(err)
			}
			res, err := e.Query(`path(a, Y)?`, WithStrategy(SemiNaive))
			if err != nil {
				t.Fatal(err)
			}
			if ref == "" {
				ref = res.String()
			} else if res.String() != ref {
				t.Fatalf("threshold %d answers %s, want %s", tc.threshold, res, ref)
			}
		})
	}
}
