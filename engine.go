package sepdl

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sepdl/internal/aho"
	"sepdl/internal/ast"
	"sepdl/internal/budget"
	"sepdl/internal/check"
	"sepdl/internal/core"
	"sepdl/internal/counting"
	"sepdl/internal/database"
	"sepdl/internal/diag"
	"sepdl/internal/eval"
	"sepdl/internal/hn"
	"sepdl/internal/magic"
	"sepdl/internal/par"
	"sepdl/internal/parser"
	"sepdl/internal/plancache"
	"sepdl/internal/provenance"
	"sepdl/internal/rel"
	"sepdl/internal/stats"
	"sepdl/internal/tabling"
)

// Strategy selects how a query is evaluated.
type Strategy string

// Available strategies. Auto runs the separability test and picks
// Separable, MagicSets, or SemiNaive.
const (
	Auto          Strategy = "auto"
	Separable     Strategy = "separable"
	MagicSets     Strategy = "magic"
	MagicSetsSup  Strategy = "magic-sup" // supplementary-magic variant [BR87]
	Counting      Strategy = "counting"
	HenschenNaqvi Strategy = "hn"
	AhoUllman     Strategy = "aho"     // selection pushing [AU79]; stable columns only
	Tabling       Strategy = "tabling" // memoized top-down (QSQ-style); positive programs
	SemiNaive     Strategy = "seminaive"
	Naive         Strategy = "naive"
)

// Engine holds a program and a fact database and answers queries.
// The zero value is not usable; construct with New.
//
// An Engine is safe for concurrent use. Queries run under snapshot
// isolation: each Query/QueryCtx (and each Materialize) evaluates against
// an immutable copy-on-write snapshot of the fact database taken at entry,
// so concurrent readers never block each other and never observe a
// half-applied update. Writers — AddFact, LoadFacts, LoadProgram,
// ClearProgram — serialize on an internal writer lock and are visible to
// every query admitted after they return. WithMaxConcurrent adds admission
// control on top: excess queries queue until a slot frees or their
// deadline expires, then fail with ErrOverloaded instead of thrashing.
type Engine struct {
	// mu serializes database mutation, program swaps, and snapshot
	// creation (taking a snapshot flips per-relation copy-on-write marks,
	// so it needs the same exclusion as a write; it is O(#relations) and
	// never held during evaluation).
	mu    sync.Mutex
	db    *database.Database
	state *progState
	// store is the durability seam: every write is appended (and fsynced)
	// here before it is applied to db/state, so an acknowledged write is
	// durable and a failed append changes nothing. New engines get the
	// no-op MemStore; Open swaps in the write-ahead log.
	store database.Store
	// dbRev is the fact-database revision: bumped under mu by every write
	// that actually changes the fact set. Closure-cache entries are keyed
	// by it, so a bump strands every entry computed against older facts.
	dbRev uint64

	maxConcurrent int
	admitWait     time.Duration
	gate          chan struct{}
	strict        bool
	parallelism   int
	parThreshold  int
	planCacheOff  bool
	closureBytes  int64
	closures      *plancache.Closures
	ckptBytes     int64
	noSync        bool
	// memtableBytes, when positive, is the in-RAM overlay footprint that
	// triggers a checkpoint flush on a cold-storage engine, independent of
	// log growth. blockCacheBytes budgets the segment block cache
	// (0 = segment.DefaultCacheBytes, negative = no retention). coldOff
	// keeps recovered and checkpointed data fully resident (the in-RAM
	// oracle mode benches and equivalence tests compare against).
	memtableBytes   int64
	blockCacheBytes int64
	coldOff         bool

	// ckptBusy single-flights background checkpoints; ckptWG lets Close
	// wait out one still in flight; closed gates writes after Close.
	ckptBusy atomic.Bool
	ckptWG   sync.WaitGroup
	closed   atomic.Bool

	// draining is the runtime drain switch (see Drain); drainCh is closed
	// on Drain so queries queued at the admission gate wake up and fail
	// instead of waiting out a slot that will never serve them.
	draining atomic.Bool
	drainMu  sync.Mutex
	drainCh  chan struct{}

	// counters aggregates lifetime totals across all queries; see Stats.
	counters engineCounters
}

// progState is one immutable program revision plus its memoized
// separability analyses and compiled query plans. LoadProgram and
// ClearProgram install a fresh state, so queries already running keep
// analyzing the revision they started with and never pollute the new
// cache; the plan cache dies with its revision, which is exactly its
// validity scope (plans depend only on the program and the query form).
type progState struct {
	prog *ast.Program
	// rev is this revision's engine-global number, used to scope
	// closure-cache entries; see plancache.Scope.
	rev      uint64
	mu       sync.Mutex
	analyses map[string]analysisEntry
	plans    map[planKey]*plan
}

// analysisEntry memoizes one AnalyzeOpts outcome, keeping the error so
// Explain and AnalyzeSeparability can report why a recursion is not
// separable without re-running the analysis.
type analysisEntry struct {
	a   *core.Analysis
	err error
}

// progRevCounter numbers program revisions engine-globally, so closure
// cache scopes never collide across engines sharing one cache in tests.
var progRevCounter atomic.Uint64

func newProgState(p *ast.Program) *progState {
	return &progState{
		prog:     p,
		rev:      progRevCounter.Add(1),
		analyses: make(map[string]analysisEntry),
		plans:    make(map[planKey]*plan),
	}
}

// planKey identifies one compiled plan: the requested strategy (Auto
// included — its entry memoizes the pick), the predicate, which argument
// positions carry constants, and the connectivity relaxation.
type planKey struct {
	strategy Strategy
	pred     string
	mask     string
	relaxed  bool
}

// plan holds the constant-independent compiled artifacts for one query
// form: the resolved strategy, the separability analysis the strategy
// consumes (nil when not separable), and the magic rewrite template for
// the Magic strategies.
type plan struct {
	strategy Strategy
	analysis *core.Analysis
	template *magic.Template
}

// formMask renders which argument positions carry constants ('b') versus
// variables ('f') — the query-form key plans and batches group by.
func formMask(q ast.Atom) string {
	b := make([]byte, len(q.Args))
	for i, t := range q.Args {
		if t.IsVar() {
			b[i] = 'f'
		} else {
			b[i] = 'b'
		}
	}
	return string(b)
}

// EngineOption configures an Engine at construction.
type EngineOption func(*Engine)

// WithMaxConcurrent bounds how many queries (including Materialize calls)
// the engine evaluates at once. n > 0 admits at most n; a query arriving
// with every slot busy queues until a slot frees, its context is done, or
// the WithAdmissionWait bound elapses — whichever is first — and a query
// that never gets a slot fails with an *OverloadError matching
// ErrOverloaded. With no admission wait and no context deadline, a query
// that finds every slot busy is rejected immediately (load shedding).
// n == 0 (the default) means unlimited. n < 0 admits nothing: every query
// fails overloaded, a drain mode for maintenance windows and for testing
// overload handling.
func WithMaxConcurrent(n int) EngineOption {
	return func(e *Engine) { e.maxConcurrent = n }
}

// WithAdmissionWait bounds how long a query queues for an admission slot
// under WithMaxConcurrent before failing with ErrOverloaded. The query's
// context deadline still applies while queued; the earlier bound wins.
func WithAdmissionWait(d time.Duration) EngineOption {
	return func(e *Engine) { e.admitWait = d }
}

// WithStrictChecks makes LoadProgram run the full static-analysis pass
// (the same one as sepdl check) on the combined program and reject it when
// any warning-or-worse diagnostic remains: non-stratifiable negation,
// non-separable recursions, cartesian joins, singleton variables. Without
// it only the well-formedness errors reject at load time and the rest
// surface at query time (stratification) or degrade the strategy choice
// (separability). The returned error is a Diagnostics list carrying every
// finding with its code and position.
func WithStrictChecks() EngineOption {
	return func(e *Engine) { e.strict = true }
}

// WithParallelism sets the worker-pool size the evaluation strategies use
// for one query: concurrent per-class closures in the Separable evaluator
// and hash-partitioned delta evaluation in the semi-naive fixpoint (which
// Magic Sets and Aho–Ullman run on). n < 1 (and the default) means
// runtime.GOMAXPROCS; n == 1 disables intra-query parallelism. Whatever
// the setting, a query's answer set is identical — only evaluation
// scheduling changes — and resource budgets, deadlines, and cancellation
// are enforced across all workers through the query's shared tracker.
// Rounds below WithParallelThreshold's work floor run sequentially, so
// small queries keep their single-threaded cost profile.
func WithParallelism(n int) EngineOption {
	return func(e *Engine) { e.parallelism = n }
}

// WithParallelThreshold sets a static floor on the per-round work size
// (tuples feeding the round's joins, or the support database size for the
// Separable product evaluator) at which parallel evaluation engages.
//
// Deprecated: the default (0) now gates each round adaptively — the
// engine estimates a round's output as its input work times the join
// fan-out observed on earlier rounds and fans out only past the measured
// break-even — which parallelizes emission-heavy rounds a static input
// floor keeps sequential. The option is kept as a manual override for
// workloads whose fan-out the estimator misjudges: a positive n restores
// the old fixed floor, and a negative n removes the gate entirely (useful
// in tests to force the parallel paths on tiny programs).
func WithParallelThreshold(n int) EngineOption {
	return func(e *Engine) { e.parThreshold = n }
}

// WithPlanCache toggles the per-program-revision plan cache (default on):
// compiled query plans — strategy picks, separability analyses, magic
// rewrite templates — are memoized by query form, so repeated forms skip
// rewrite and analysis. Disabling it recompiles every query, which only
// makes sense for measuring the cache's own benefit.
func WithPlanCache(enabled bool) EngineOption {
	return func(e *Engine) { e.planCacheOff = !enabled }
}

// WithClosureCache sets the byte budget of the cross-query closure cache:
// the Separable evaluator's non-driver class closures depend only on the
// program and the facts, never on the selection constant, so they are
// memoized across queries and invalidated by revision bump on every write.
// maxBytes == 0 (the default) uses plancache.DefaultMaxBytes; maxBytes < 0
// disables the cache. Enabling it (the default) routes the Separable
// second phase through the product evaluator, whose answers are identical.
func WithClosureCache(maxBytes int64) EngineOption {
	return func(e *Engine) { e.closureBytes = maxBytes }
}

// New returns an empty engine.
func New(opts ...EngineOption) *Engine {
	e := &Engine{
		db:      database.New(),
		state:   newProgState(&ast.Program{}),
		store:   database.NewMemStore(),
		dbRev:   1,
		drainCh: make(chan struct{}),
	}
	for _, o := range opts {
		o(e)
	}
	if e.maxConcurrent > 0 {
		e.gate = make(chan struct{}, e.maxConcurrent)
	}
	if e.closureBytes >= 0 {
		e.closures = plancache.NewClosures(e.closureBytes)
	}
	return e
}

// ErrOverloaded is the sentinel every *OverloadError matches via
// errors.Is: the engine's admission gate rejected the query because
// WithMaxConcurrent slots stayed busy for the whole admissible wait.
var ErrOverloaded = errors.New("sepdl: engine overloaded")

// ErrDraining is the sentinel matched (in addition to ErrOverloaded) by
// rejections from a draining engine: Drain was called, or the engine was
// built with a negative WithMaxConcurrent. A draining engine finishes the
// queries it already admitted and rejects everything new, so callers that
// see ErrDraining should fail over to another replica rather than retry.
var ErrDraining = errors.New("sepdl: engine draining")

// ErrInternal is the sentinel wrapped by the panic-recovery boundary: an
// evaluation strategy panicked and the engine converted the panic into an
// error instead of crashing the process. It indicates a bug in the engine,
// not in the caller's program or query.
var ErrInternal = errors.New("sepdl: internal panic")

// Drain puts the engine in drain mode: queries already admitted run to
// completion, but every new Query/QueryBatch/Materialize — and any query
// still queued at the admission gate — fails with an *OverloadError
// matching both ErrOverloaded and ErrDraining. Writes (AddFact, LoadFacts,
// LoadProgram) remain allowed. Drain is idempotent and safe to call
// concurrently with queries; a server uses it on SIGTERM to finish
// in-flight work while shedding new requests, then exits once InFlight
// (see Stats) returns to zero.
func (e *Engine) Drain() {
	e.drainMu.Lock()
	defer e.drainMu.Unlock()
	if e.draining.CompareAndSwap(false, true) {
		close(e.drainCh)
	}
}

// Resume takes the engine back out of drain mode, admitting queries again.
func (e *Engine) Resume() {
	e.drainMu.Lock()
	defer e.drainMu.Unlock()
	if e.draining.CompareAndSwap(true, false) {
		e.drainCh = make(chan struct{})
	}
}

// Draining reports whether the engine is in drain mode (via Drain; a
// negative WithMaxConcurrent is a construction-time drain and reports
// false here but still rejects with ErrDraining).
func (e *Engine) Draining() bool { return e.draining.Load() }

// drainSignal returns the channel closed by Drain, for admission waits.
func (e *Engine) drainSignal() <-chan struct{} {
	e.drainMu.Lock()
	defer e.drainMu.Unlock()
	return e.drainCh
}

// OverloadError reports a query rejected by admission control: how many
// slots the engine has, how long the query queued, and the context error
// that ended the wait (nil when the admission wait elapsed or the engine
// is draining). It matches ErrOverloaded via errors.Is, plus the context
// cause when present.
type OverloadError struct {
	// MaxConcurrent is the engine's admission limit (negative in drain mode).
	MaxConcurrent int
	// Waited is how long the query queued before giving up.
	Waited time.Duration
	// Cause is the context error that cut the wait short, if any.
	Cause error
	// Draining reports that the rejection came from runtime drain mode
	// (Drain was called); the error then also matches ErrDraining.
	Draining bool
}

// Error renders the rejection with its limit and wait.
func (e *OverloadError) Error() string {
	if e.Draining || e.MaxConcurrent < 0 {
		return "sepdl: engine overloaded: draining, no queries admitted"
	}
	return fmt.Sprintf("sepdl: engine overloaded: no admission slot freed in %v (max %d concurrent)",
		e.Waited.Round(time.Microsecond), e.MaxConcurrent)
}

// Unwrap matches ErrOverloaded always, ErrDraining for drain rejections,
// plus the context cause when present.
func (e *OverloadError) Unwrap() []error {
	errs := []error{ErrOverloaded}
	if e.Draining || e.MaxConcurrent < 0 {
		errs = append(errs, ErrDraining)
	}
	if e.Cause != nil {
		errs = append(errs, e.Cause)
	}
	return errs
}

// admit acquires an admission slot, returning the release func. The
// returned error is always an *OverloadError.
func (e *Engine) admit(ctx context.Context) (release func(), err error) {
	if e.draining.Load() {
		return nil, &OverloadError{MaxConcurrent: e.maxConcurrent, Draining: true}
	}
	if e.maxConcurrent == 0 {
		return func() {}, nil
	}
	if e.maxConcurrent < 0 {
		return nil, &OverloadError{MaxConcurrent: e.maxConcurrent}
	}
	select {
	case e.gate <- struct{}{}:
		return func() { <-e.gate }, nil
	default:
	}
	// Every slot is busy: queue with a deadline.
	if e.admitWait <= 0 && ctx.Done() == nil {
		// Nothing bounds the wait, so shed immediately rather than pile up
		// unbounded waiters behind a saturated engine.
		return nil, &OverloadError{MaxConcurrent: e.maxConcurrent}
	}
	var expired <-chan time.Time
	if e.admitWait > 0 {
		timer := time.NewTimer(e.admitWait)
		defer timer.Stop()
		expired = timer.C
	}
	start := time.Now()
	select {
	case e.gate <- struct{}{}:
		return func() { <-e.gate }, nil
	case <-e.drainSignal():
		// Drain flipped while we queued: the slots still busy belong to
		// queries that will run to completion, but nothing new is admitted.
		return nil, &OverloadError{MaxConcurrent: e.maxConcurrent, Waited: time.Since(start), Draining: true}
	case <-expired:
		return nil, &OverloadError{MaxConcurrent: e.maxConcurrent, Waited: time.Since(start)}
	case <-ctx.Done():
		return nil, &OverloadError{MaxConcurrent: e.maxConcurrent, Waited: time.Since(start), Cause: ctx.Err()}
	}
}

// snapshot captures, under the writer lock, the current program revision,
// an immutable snapshot of the fact database, and the database revision
// the snapshot corresponds to, for one query to evaluate against.
func (e *Engine) snapshot() (*progState, *database.Database, uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.state, e.db.Snapshot(), e.dbRev
}

// bumpDBRevLocked records that the fact set changed: queries snapshotted
// from now on key closure-cache entries under the new revision, which no
// old entry can match. The eager sweep only reclaims the stranded entries'
// memory; correctness needs nothing beyond the bump.
func (e *Engine) bumpDBRevLocked() {
	e.dbRev++
	if e.closures != nil {
		rev := e.dbRev
		e.closures.Invalidate(func(s plancache.Scope) bool { return s.DBRev >= rev })
	}
}

// LoadProgram parses src and appends its rules to the engine's program.
// On a durable engine the source is logged (and fsynced) before the
// program swap, so a load that returns nil survives a crash and a load
// that fails leaves both the log and the program unchanged.
func (e *Engine) LoadProgram(src string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	combined, err := e.compileProgramLocked(src, e.strict)
	if err != nil {
		return err
	}
	if err := e.store.AppendProgram(src); err != nil {
		return err
	}
	e.state = newProgState(combined)
	e.closures.Clear()
	e.maybeCheckpointLocked()
	return nil
}

// compileProgramLocked parses src and validates the program that would
// result from appending its rules, without installing anything — the
// write-ahead ordering needs every failure found before the log append.
func (e *Engine) compileProgramLocked(src string, strict bool) (*ast.Program, error) {
	p, err := parser.Program(src)
	if err != nil {
		return nil, err
	}
	combined := &ast.Program{Rules: append(append([]ast.Rule{}, e.state.prog.Rules...), p.Rules...)}
	if err := combined.Validate(); err != nil {
		return nil, err
	}
	if strict {
		if l := check.Program(combined, nil).Filter(diag.Warning); len(l) > 0 {
			return nil, l
		}
	}
	return combined, nil
}

// ClearProgram removes all rules (facts are kept). The error is always
// nil on an in-RAM engine; a durable engine can fail to log the clear,
// in which case the rules remain.
func (e *Engine) ClearProgram() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.store.AppendClear(); err != nil {
		return err
	}
	e.state = newProgState(&ast.Program{})
	e.closures.Clear()
	e.maybeCheckpointLocked()
	return nil
}

// ProgramText renders the current rules.
func (e *Engine) ProgramText() string { return e.progState().prog.String() }

// progState returns the current program revision under the writer lock.
func (e *Engine) progState() *progState {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.state
}

// LoadFacts parses ground atoms from src and adds them to the database.
// The batch is atomic: it is validated whole before anything is logged or
// applied, so an error — parse, groundness, arity — leaves the engine
// byte-for-byte unchanged, with no prefix of the batch visible.
func (e *Engine) LoadFacts(src string) error {
	fs, err := parser.Facts(src)
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.db.CheckFacts(fs); err != nil {
		return err
	}
	if err := e.store.AppendFacts(src); err != nil {
		return err
	}
	before := e.db.NumTuples()
	e.db.Load(fs) // cannot fail: validated above
	if e.db.NumTuples() != before {
		e.bumpDBRevLocked()
	}
	e.maybeCheckpointLocked()
	return nil
}

// AddFact adds a single fact. Queries admitted after AddFact returns see
// the fact; queries already evaluating keep their snapshot. On a durable
// engine the fact is logged and fsynced before it becomes visible.
func (e *Engine) AddFact(pred string, args ...string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.db.CheckFact(pred, args); err != nil {
		return err
	}
	if err := e.store.AppendFact(pred, args); err != nil {
		return err
	}
	added, _ := e.db.AddFact(pred, args...) // cannot fail: validated above
	if added {
		e.bumpDBRevLocked()
	}
	e.maybeCheckpointLocked()
	return nil
}

// Predicates returns the names of all relations with facts, sorted.
func (e *Engine) Predicates() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.db.Preds()
}

// NumFacts returns the number of stored base facts.
func (e *Engine) NumFacts() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.db.NumTuples()
}

// DistinctConstants returns the paper's n: the number of distinct
// constants appearing in base facts.
func (e *Engine) DistinctConstants() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.db.DistinctConstants()
}

// Budget bounds the resources one query (or one materialized view) may
// consume; zero fields mean unlimited. The comparison strategies the paper
// measures are exactly the ones that blow up on adversarial inputs —
// Generalized Magic builds Ω(n²) intermediate tuples and Counting Ω(2ⁿ)
// where Separable builds O(n) — so a server embedding the engine should
// always set at least MaxTuples or a deadline.
type Budget struct {
	// MaxTuples bounds insertions into derived relations.
	MaxTuples int
	// MaxRounds bounds fixpoint (or carry-loop) rounds.
	MaxRounds int
	// MaxBytes bounds the estimated bytes of derived tuples materialized.
	MaxBytes int64
}

// ResourceError is the typed error returned when a query exceeds its
// Budget, deadline, or iteration bound: it reports which limit was hit, how
// much was consumed, and the strategy and round evaluation had reached.
// Every ResourceError matches ErrBudgetExceeded via errors.Is; deadline and
// cancellation additionally match context.DeadlineExceeded and
// context.Canceled.
type ResourceError = budget.ResourceError

// ErrBudgetExceeded is the sentinel every *ResourceError matches via
// errors.Is, distinguishing a resource cutoff from a malformed program.
var ErrBudgetExceeded = budget.ErrBudget

// The values a ResourceError's Limit field can take.
const (
	LimitTuples   = budget.LimitTuples   // Budget.MaxTuples exhausted
	LimitRounds   = budget.LimitRounds   // Budget.MaxRounds or WithMaxIterations exhausted
	LimitBytes    = budget.LimitBytes    // Budget.MaxBytes exhausted
	LimitDeadline = budget.LimitDeadline // context deadline expired
	LimitCanceled = budget.LimitCanceled // context canceled
)

// queryConfig collects query options, plus the per-attempt cache wiring
// the engine threads through to the strategies.
type queryConfig struct {
	strategy          Strategy
	allowDisconnected bool
	maxIterations     int
	budget            Budget
	deadline          time.Duration
	fallback          bool
	parallelism       int // resolved worker count (par.Degree applied)
	parThreshold      int
	materializeRounds bool                // ablation: pre-streaming round pipeline
	closures          *plancache.Closures // engine's closure cache (nil when disabled)
	scope             plancache.Scope     // revisions of the attempt's snapshot
}

// tracker builds the internal budget tracker for ctx and the configured
// limits (nil when nothing is bounded).
func (c *queryConfig) tracker(ctx context.Context) *budget.Budget {
	return budget.New(ctx, budget.Limits{
		MaxTuples: c.budget.MaxTuples,
		MaxRounds: c.budget.MaxRounds,
		MaxBytes:  c.budget.MaxBytes,
	})
}

// QueryOption customizes a single Query call.
type QueryOption func(*queryConfig)

// WithStrategy forces a particular evaluation strategy.
func WithStrategy(s Strategy) QueryOption {
	return func(c *queryConfig) { c.strategy = s }
}

// WithRelaxedConnectivity lets the Separable strategy accept recursions
// that violate condition 4 of Definition 2.4 (still correct, §5, but the
// selection no longer focuses the disconnected part).
func WithRelaxedConnectivity() QueryOption {
	return func(c *queryConfig) { c.allowDisconnected = true }
}

// WithMaxIterations bounds fixpoint rounds / levels for the strategies
// that support a bound. Exceeding it returns a *ResourceError.
func WithMaxIterations(n int) QueryOption {
	return func(c *queryConfig) { c.maxIterations = n }
}

// WithBudget bounds the resources the query may consume; exceeding any
// limit returns a *ResourceError promptly (limits are checked every
// fixpoint round and at join-inner-loop granularity) with the engine's
// database unmodified.
func WithBudget(b Budget) QueryOption {
	return func(c *queryConfig) { c.budget = b }
}

// WithDeadline gives the query a wall-clock deadline measured from the
// start of evaluation, equivalent to passing QueryCtx a context built with
// context.WithTimeout. Exceeding it returns a *ResourceError matching
// context.DeadlineExceeded.
func WithDeadline(d time.Duration) QueryOption {
	return func(c *queryConfig) { c.deadline = d }
}

// withMaterializedRounds restores the pre-streaming evaluation pipeline
// for one query: every fixpoint round and carry loop materializes its
// full emission set and computes the delta by differencing afterwards,
// instead of streaming emissions through the round sinks. Answers are
// byte-identical either way; the equivalence suite and sepbench
// -stream-bench use it to measure and verify what streaming buys. Not
// exported: it is an ablation, not a tuning knob.
func withMaterializedRounds() QueryOption {
	return func(c *queryConfig) { c.materializeRounds = true }
}

// WithFallback opts the query into graceful degradation: if the selected
// compiled strategy (Separable, Magic, Counting, HN, Aho-Ullman, Tabling)
// aborts on a tuple, round, or byte budget, the query is retried once
// under SemiNaive. The retry runs under the same context — any wall-clock
// deadline spans both attempts, so only the remaining time is available —
// with a fresh allowance of the per-query tuple/round/byte limits (the
// aborted attempt consumed its allowance discovering the blowup; the
// fallback is a different evaluation, bounded the same way). Stats on the
// returned Result report which strategy ultimately answered: Strategy is
// the one that produced the answer and FallbackFrom names the strategy
// that hit its budget first. Deadline expiry and cancellation never fall
// back — there is no budget left to retry with — and SemiNaive/Naive do
// not fall back to themselves. If the fallback also fails, the original
// strategy's error is returned, annotated with the fallback's.
func WithFallback() QueryOption {
	return func(c *queryConfig) { c.fallback = true }
}

// Stats summarizes the work one query performed.
type Stats struct {
	// Strategy actually used (differs from the request only under Auto, or
	// when WithFallback retried under SemiNaive).
	Strategy Strategy
	// FallbackFrom is the strategy that exhausted its resource budget
	// before WithFallback's SemiNaive retry answered ("" when the first
	// strategy answered).
	FallbackFrom Strategy
	// RelationSizes maps each relation the strategy materialized to its
	// peak size — the paper's Definition 4.2 measure.
	RelationSizes map[string]int
	// MaxRelation and MaxRelationSize identify the largest of those.
	MaxRelation     string
	MaxRelationSize int
	// Iterations counts fixpoint/carry-loop rounds; Inserted counts tuple
	// insertions into derived relations.
	Iterations int
	Inserted   int
	// PlanCacheHit reports whether the query's compiled plan (strategy
	// pick, analysis, magic rewrite template) came from the plan cache
	// instead of being compiled for this query.
	PlanCacheHit bool
	// ClosureCacheHits and ClosureCacheMisses count the Separable
	// evaluator's per-start class closures resolved from the cross-query
	// closure cache versus computed (and filled) during this query. Both
	// zero for other strategies or with the cache disabled.
	ClosureCacheHits   int
	ClosureCacheMisses int
	// BatchSize is how many queries shared this evaluation's fixpoint: 1
	// for a standalone Query, len(batch) for QueryBatch/RunBatch (every
	// result of one batch reports the whole batch's work).
	BatchSize int
	// PeakIntermediateBytes is the largest transient materialization any
	// single fixpoint round or carry-loop step held outside the growing
	// totals — under the streaming executor, just the round's delta. It is
	// not part of RelationSizes (the paper's Definition 4.2 measure counts
	// named relations, not round scratch).
	PeakIntermediateBytes int64
	// Duration is wall-clock evaluation time.
	Duration time.Duration
}

// Result is the answer to a query.
type Result struct {
	// Columns are the query's distinct variables in first-occurrence
	// order; answers are tuples over these columns.
	Columns []string
	// Stats describes the evaluation.
	Stats Stats

	rel *rel.Relation
	db  *database.Database
}

// Len returns the number of answer tuples.
func (r *Result) Len() int { return r.rel.Len() }

// Rows returns the answers as strings, one slice per tuple, in sorted
// order.
func (r *Result) Rows() [][]string {
	out := make([][]string, 0, r.rel.Len())
	for _, t := range r.rel.Rows() {
		row := make([]string, len(t))
		for i, v := range t {
			row[i] = r.db.Syms.Name(v)
		}
		out = append(out, row)
	}
	sortRows(out)
	return out
}

// True reports whether a fully ground query succeeded (its answer is the
// empty tuple).
func (r *Result) True() bool { return len(r.Columns) == 0 && r.rel.Len() == 1 }

// String renders the result compactly, e.g. "{(radio) (tv)}".
func (r *Result) String() string { return r.rel.Dump(r.db.Syms) }

// ErrUnknownStrategy reports an unrecognized strategy name.
var ErrUnknownStrategy = errors.New("sepdl: unknown strategy")

// testHookEval, when non-nil, runs inside QueryCtx's recovery boundary
// just before strategy dispatch; tests use it to inject failures and to
// hold admission slots open deterministically.
var testHookEval func()

// Query parses and evaluates a query such as "buys(tom, Y)?". It is
// QueryCtx with a background context; use QueryCtx (or WithDeadline /
// WithBudget) when evaluation must be bounded.
func (e *Engine) Query(query string, opts ...QueryOption) (*Result, error) {
	return e.QueryCtx(context.Background(), query, opts...)
}

// QueryCtx parses and evaluates a query under ctx. The query evaluates
// against an immutable snapshot of the database taken at admission, so it
// is safe to call concurrently with AddFact and other queries and always
// observes a fully applied state. Cancellation and deadlines are honored
// at fixpoint-round and join-inner-loop granularity by every strategy, so
// a cut-off returns promptly; the engine's database is never modified by
// an aborted (or completed) query. A cut-off returns a *ResourceError
// matching ErrBudgetExceeded and, for context limits,
// context.DeadlineExceeded or context.Canceled. Under WithMaxConcurrent,
// an admission rejection returns an *OverloadError matching ErrOverloaded.
func (e *Engine) QueryCtx(ctx context.Context, query string, opts ...QueryOption) (*Result, error) {
	cfg := e.newQueryConfig(opts)
	q, err := parser.Query(query)
	if err != nil {
		return nil, err
	}
	return e.queryAtom(ctx, q, query, cfg)
}

// newQueryConfig resolves QueryOptions against the engine's defaults.
func (e *Engine) newQueryConfig(opts []QueryOption) queryConfig {
	cfg := queryConfig{strategy: Auto, parallelism: par.Degree(e.parallelism), parThreshold: e.parThreshold}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// queryAtom evaluates one already-parsed query: admission, snapshot, plan
// lookup, strategy dispatch, fallback. Query/QueryCtx and Prepared.Run all
// land here.
func (e *Engine) queryAtom(ctx context.Context, q ast.Atom, query string, cfg queryConfig) (*Result, error) {
	if cfg.deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.deadline)
		defer cancel()
	}
	release, err := e.admit(ctx)
	if err != nil {
		e.counters.admitRejected(err)
		return nil, err
	}
	defer release()
	e.counters.queries.Add(1)
	e.counters.inFlight.Add(1)
	defer e.counters.inFlight.Add(-1)
	st, db, dbRev := e.snapshot()

	bud := cfg.tracker(ctx)
	if err := bud.Err(); err != nil {
		return nil, e.counters.evalFailed(err) // context already expired / canceled
	}
	c := stats.New()
	start := time.Now()

	if !st.prog.IDBPreds()[q.Pred] {
		// EDB query: answer directly from the base relations.
		ans, err := eval.Answer(db, q)
		if err != nil {
			return nil, e.counters.evalFailed(err)
		}
		return e.counters.evalOK(result(db, q, ans, Stats{Strategy: cfg.strategy, BatchSize: 1, Duration: time.Since(start)}, c)), nil
	}
	pl, hit := e.planFor(st, q, cfg)
	e.counters.planLookup(hit)
	strategy := pl.strategy
	bud.SetStrategy(string(strategy))
	if e.closures != nil {
		cfg.closures = e.closures
		cfg.scope = plancache.Scope{ProgRev: st.rev, DBRev: dbRev}
	}

	ans, err := runStrategy(st, db, q, query, pl, cfg, c, bud)
	fellFrom := Strategy("")
	if err != nil && cfg.fallback && fallbackEligible(strategy, err) {
		fbBud := cfg.tracker(ctx)
		fbBud.SetStrategy(string(SemiNaive))
		fbCol := stats.New()
		fbAns, fbErr := runStrategy(st, db, q, query, &plan{strategy: SemiNaive}, cfg, fbCol, fbBud)
		if fbErr == nil {
			fellFrom, strategy, ans, err, c = strategy, SemiNaive, fbAns, nil, fbCol
		} else {
			err = fmt.Errorf("%w (semi-naive fallback also failed: %v)", err, fbErr)
		}
	}
	if err != nil {
		return nil, e.counters.evalFailed(err)
	}
	return e.counters.evalOK(result(db, q, ans, Stats{Strategy: strategy, FallbackFrom: fellFrom, PlanCacheHit: hit, BatchSize: 1, Duration: time.Since(start)}, c)), nil
}

// planFor resolves q's compiled plan against st, honoring WithPlanCache:
// with the cache off the plan is compiled fresh and not stored.
func (e *Engine) planFor(st *progState, q ast.Atom, cfg queryConfig) (*plan, bool) {
	if e.planCacheOff {
		st.mu.Lock()
		defer st.mu.Unlock()
		return st.compileLocked(q, cfg), false
	}
	return st.cachedPlan(q, cfg)
}

// fallbackEligible reports whether WithFallback should retry after err: a
// resource cutoff that was not the clock running out, on a strategy that
// is not already the fallback.
func fallbackEligible(s Strategy, err error) bool {
	if s == SemiNaive || s == Naive {
		return false
	}
	return errors.Is(err, ErrBudgetExceeded) &&
		!errors.Is(err, context.DeadlineExceeded) &&
		!errors.Is(err, context.Canceled)
}

// runStrategy dispatches one evaluation attempt against an immutable
// program revision and database snapshot, with the last-resort panic
// recovery every attempt needs: an internal panic must not take down the
// caller. A budget abort that escaped a path without its own Guard still
// surfaces as its typed error; anything else is reported with the strategy
// and query for the bug report.
func runStrategy(st *progState, db *database.Database, q ast.Atom, query string, pl *plan, cfg queryConfig, c *stats.Collector, bud *budget.Budget) (ans *rel.Relation, err error) {
	strategy := pl.strategy
	defer func() {
		if r := recover(); r != nil {
			ans = nil
			if aerr, ok := budget.AsAbort(r); ok {
				err = aerr
				return
			}
			err = fmt.Errorf("%w evaluating %q with strategy %s: %v", ErrInternal, query, strategy, r)
		}
	}()
	if testHookEval != nil {
		testHookEval()
	}

	switch strategy {
	case Separable:
		ans, err = core.Answer(st.prog, db, q, core.EvalOptions{
			Collector:         c,
			Analysis:          pl.analysis,
			AllowDisconnected: cfg.allowDisconnected,
			Budget:            bud,
			Parallelism:       cfg.parallelism,
			ParallelThreshold: cfg.parThreshold,
			MaterializeRounds: cfg.materializeRounds,
			Closures:          cfg.closures,
			CacheScope:        cfg.scope,
		})
	case MagicSets, MagicSetsSup:
		ans, err = magic.Answer(st.prog, db, q, magic.Options{
			Collector:         c,
			MaxIterations:     cfg.maxIterations,
			Supplementary:     strategy == MagicSetsSup,
			Budget:            bud,
			Parallelism:       cfg.parallelism,
			ParallelThreshold: cfg.parThreshold,
			MaterializeRounds: cfg.materializeRounds,
			Template:          pl.template,
		})
	case Counting:
		ans, err = counting.Answer(st.prog, db, q, counting.Options{Collector: c, Analysis: pl.analysis, MaxLevels: cfg.maxIterations, Budget: bud})
	case HenschenNaqvi:
		ans, err = hn.Answer(st.prog, db, q, hn.Options{Collector: c, Analysis: pl.analysis, MaxDepth: cfg.maxIterations, Budget: bud})
	case AhoUllman:
		ans, err = aho.Answer(st.prog, db, q, aho.Options{
			Collector:         c,
			MaxIterations:     cfg.maxIterations,
			Budget:            bud,
			Parallelism:       cfg.parallelism,
			ParallelThreshold: cfg.parThreshold,
			MaterializeRounds: cfg.materializeRounds,
		})
	case Tabling:
		ans, err = tabling.Answer(st.prog, db, q, tabling.Options{Collector: c, Budget: bud})
	case SemiNaive, Naive:
		var view *database.Database
		view, err = eval.Run(st.prog, db, eval.Options{
			Collector:         c,
			Naive:             strategy == Naive,
			MaxIterations:     cfg.maxIterations,
			Budget:            bud,
			Parallelism:       cfg.parallelism,
			ParallelThreshold: cfg.parThreshold,
			MaterializeRounds: cfg.materializeRounds,
		})
		if err == nil {
			ans, err = eval.Answer(view, q)
		}
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownStrategy, strategy)
	}
	return ans, err
}

func result(db *database.Database, q ast.Atom, ans *rel.Relation, st Stats, c *stats.Collector) *Result {
	st.RelationSizes = c.Sizes
	st.MaxRelation, st.MaxRelationSize = c.MaxRelation()
	st.Iterations = c.Iterations
	st.Inserted = c.Inserted
	st.ClosureCacheHits, st.ClosureCacheMisses = c.ClosureCounts()
	st.PeakIntermediateBytes = c.PeakIntermediate()
	return &Result{Columns: eval.QueryVars(q), Stats: st, rel: ans, db: db}
}

// analysisErr returns the cached separability analysis for pred under the
// given relaxation, with the analysis error when it is not separable. The
// cache is scoped to one program revision and safe for concurrent queries.
func (st *progState) analysisErr(pred string, relaxed bool) (*core.Analysis, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.analysisLocked(pred, relaxed)
}

// analysisLocked is analysisErr for callers already holding st.mu (the
// plan-compilation path, which would deadlock taking it twice).
func (st *progState) analysisLocked(pred string, relaxed bool) (*core.Analysis, error) {
	key := pred
	if relaxed {
		key = pred + "\x00relaxed"
	}
	if ent, ok := st.analyses[key]; ok {
		return ent.a, ent.err
	}
	a, err := core.AnalyzeOpts(st.prog, pred, core.Options{AllowDisconnected: relaxed})
	if err != nil {
		a = nil
	}
	st.analyses[key] = analysisEntry{a: a, err: err}
	return a, err
}

// cachedPlan returns the memoized plan for q's form, compiling it on first
// use. The second return reports a cache hit.
func (st *progState) cachedPlan(q ast.Atom, cfg queryConfig) (*plan, bool) {
	key := planKey{strategy: cfg.strategy, pred: q.Pred, mask: formMask(q), relaxed: cfg.allowDisconnected}
	st.mu.Lock()
	defer st.mu.Unlock()
	if pl, ok := st.plans[key]; ok {
		return pl, true
	}
	pl := st.compileLocked(q, cfg)
	st.plans[key] = pl
	return pl, false
}

// compileLocked builds the plan for q's form under st.mu: resolve Auto,
// then compile the strategy's constant-independent artifacts. A magic
// template that fails to compile stays nil, so evaluation reproduces the
// rewrite's error instead of reporting a cache artifact.
func (st *progState) compileLocked(q ast.Atom, cfg queryConfig) *plan {
	strategy := cfg.strategy
	if strategy == Auto {
		strategy = st.pickLocked(q, cfg)
	}
	pl := &plan{strategy: strategy}
	switch strategy {
	case Separable:
		pl.analysis, _ = st.analysisLocked(q.Pred, cfg.allowDisconnected)
	case MagicSets, MagicSetsSup:
		if tpl, err := magic.NewTemplate(st.prog, q, strategy == MagicSetsSup); err == nil {
			pl.template = tpl
		}
	case Counting, HenschenNaqvi:
		// Both analyze strictly regardless of the relaxation option.
		pl.analysis, _ = st.analysisLocked(q.Pred, false)
	}
	return pl
}

// pickLocked implements Auto: Separable when the recursion is separable
// and the query is a selection; Magic Sets for other selections;
// semi-naive otherwise.
func (st *progState) pickLocked(q ast.Atom, cfg queryConfig) Strategy {
	hasConst := false
	for _, t := range q.Args {
		if !t.IsVar() {
			hasConst = true
			break
		}
	}
	if !hasConst {
		return SemiNaive
	}
	if a, _ := st.analysisLocked(q.Pred, cfg.allowDisconnected); a != nil {
		if sel, err := a.Classify(q); err == nil && sel.Kind != core.SelNone {
			return Separable
		}
	}
	return MagicSets
}

// Explain reports, without evaluating, which strategy Auto would use for
// the query and why. It consults the same cached analysis as evaluation —
// including WithRelaxedConnectivity, which changes what Auto picks — so
// the explanation always agrees with what Query would run.
func (e *Engine) Explain(query string, opts ...QueryOption) (string, error) {
	cfg := e.newQueryConfig(opts)
	q, err := parser.Query(query)
	if err != nil {
		return "", err
	}
	st := e.progState()
	if !st.prog.IDBPreds()[q.Pred] {
		return fmt.Sprintf("%s is a base predicate: direct index lookup", q.Pred), nil
	}
	hasConst := false
	for _, t := range q.Args {
		if !t.IsVar() {
			hasConst = true
		}
	}
	if !hasConst {
		return "no selection constants: semi-naive bottom-up evaluation", nil
	}
	a, aerr := st.analysisErr(q.Pred, cfg.allowDisconnected)
	if aerr != nil {
		return fmt.Sprintf("recursion is not separable (%v): Generalized Magic Sets", aerr), nil
	}
	sel, err := a.Classify(q)
	if err != nil {
		return "", err
	}
	if sel.Kind == core.SelNone {
		return "constants select no equivalence class: Generalized Magic Sets", nil
	}
	return fmt.Sprintf("separable recursion, %s: Separable evaluation schema\n%s", sel.Kind, a), nil
}

// AnalyzeSeparability runs the Definition 2.4 test on pred's definition
// and returns the human-readable analysis, or the reason it fails. The
// result is served from the engine's per-revision analysis cache.
func (e *Engine) AnalyzeSeparability(pred string) (report string, separable bool) {
	a, err := e.progState().analysisErr(pred, false)
	if err != nil {
		return err.Error(), false
	}
	return a.String(), true
}

func sortRows(rows [][]string) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for k := range a {
			if k >= len(b) {
				return false
			}
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}

// CompilePlan renders the instantiation of the paper's Figure 2 schema
// that the Separable strategy runs for the query — the "compiled" form of
// the recursion (Figures 3 and 4 of the paper for its examples). It fails
// if the recursion is not separable or the query has no constants.
func (e *Engine) CompilePlan(query string) (string, error) {
	q, err := parser.Query(query)
	if err != nil {
		return "", err
	}
	a, err := e.progState().analysisErr(q.Pred, false)
	if err != nil {
		return "", err
	}
	return a.CompileText(q)
}

// WriteFacts writes the engine's base facts as sorted, parseable ground
// atoms, suitable for reloading with LoadFacts. The facts written are a
// consistent snapshot even while writers run.
func (e *Engine) WriteFacts(w io.Writer) error {
	_, db, _ := e.snapshot()
	return db.WriteFacts(w)
}

// Why explains a ground fact: it returns a well-founded derivation tree
// (fact, the rule deriving it, and recursively the supporting facts),
// rendered as indented text. The fact must actually hold.
func (e *Engine) Why(fact string) (string, error) {
	return e.WhyCtx(context.Background(), fact)
}

// WhyCtx is Why with a context and query options. Building an
// explanation re-derives the whole IDB with round recording, so it is
// evaluation-shaped work: ctx cancellation and WithBudget limits bound
// it exactly as they bound a query.
func (e *Engine) WhyCtx(ctx context.Context, fact string, opts ...QueryOption) (string, error) {
	a, err := parser.Query(fact)
	if err != nil {
		return "", err
	}
	cfg := e.newQueryConfig(opts)
	bud := cfg.tracker(ctx)
	if err := bud.Err(); err != nil {
		return "", err
	}
	st, db, _ := e.snapshot()
	ex, err := provenance.New(st.prog, db, bud)
	if err != nil {
		return "", err
	}
	n, err := ex.Explain(a)
	if err != nil {
		return "", err
	}
	return n.String(), nil
}
