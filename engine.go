package sepdl

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"sepdl/internal/aho"
	"sepdl/internal/ast"
	"sepdl/internal/budget"
	"sepdl/internal/core"
	"sepdl/internal/counting"
	"sepdl/internal/database"
	"sepdl/internal/eval"
	"sepdl/internal/hn"
	"sepdl/internal/magic"
	"sepdl/internal/parser"
	"sepdl/internal/provenance"
	"sepdl/internal/rel"
	"sepdl/internal/stats"
	"sepdl/internal/tabling"
)

// Strategy selects how a query is evaluated.
type Strategy string

// Available strategies. Auto runs the separability test and picks
// Separable, MagicSets, or SemiNaive.
const (
	Auto          Strategy = "auto"
	Separable     Strategy = "separable"
	MagicSets     Strategy = "magic"
	MagicSetsSup  Strategy = "magic-sup" // supplementary-magic variant [BR87]
	Counting      Strategy = "counting"
	HenschenNaqvi Strategy = "hn"
	AhoUllman     Strategy = "aho"     // selection pushing [AU79]; stable columns only
	Tabling       Strategy = "tabling" // memoized top-down (QSQ-style); positive programs
	SemiNaive     Strategy = "seminaive"
	Naive         Strategy = "naive"
)

// Engine holds a program and a fact database and answers queries.
// The zero value is not usable; construct with New. An Engine is not safe
// for concurrent use.
type Engine struct {
	prog     *ast.Program
	db       *database.Database
	analyses map[string]*core.Analysis
}

// New returns an empty engine.
func New() *Engine {
	return &Engine{
		prog:     &ast.Program{},
		db:       database.New(),
		analyses: make(map[string]*core.Analysis),
	}
}

// LoadProgram parses src and appends its rules to the engine's program.
func (e *Engine) LoadProgram(src string) error {
	p, err := parser.Program(src)
	if err != nil {
		return err
	}
	combined := &ast.Program{Rules: append(append([]ast.Rule{}, e.prog.Rules...), p.Rules...)}
	if err := combined.Validate(); err != nil {
		return err
	}
	e.prog = combined
	e.analyses = make(map[string]*core.Analysis)
	return nil
}

// ClearProgram removes all rules (facts are kept).
func (e *Engine) ClearProgram() {
	e.prog = &ast.Program{}
	e.analyses = make(map[string]*core.Analysis)
}

// ProgramText renders the current rules.
func (e *Engine) ProgramText() string { return e.prog.String() }

// LoadFacts parses ground atoms from src and adds them to the database.
func (e *Engine) LoadFacts(src string) error {
	fs, err := parser.Facts(src)
	if err != nil {
		return err
	}
	return e.db.Load(fs)
}

// AddFact adds a single fact.
func (e *Engine) AddFact(pred string, args ...string) error {
	_, err := e.db.AddFact(pred, args...)
	return err
}

// Predicates returns the names of all relations with facts, sorted.
func (e *Engine) Predicates() []string { return e.db.Preds() }

// NumFacts returns the number of stored base facts.
func (e *Engine) NumFacts() int { return e.db.NumTuples() }

// DistinctConstants returns the paper's n: the number of distinct
// constants appearing in base facts.
func (e *Engine) DistinctConstants() int { return e.db.DistinctConstants() }

// Budget bounds the resources one query (or one materialized view) may
// consume; zero fields mean unlimited. The comparison strategies the paper
// measures are exactly the ones that blow up on adversarial inputs —
// Generalized Magic builds Ω(n²) intermediate tuples and Counting Ω(2ⁿ)
// where Separable builds O(n) — so a server embedding the engine should
// always set at least MaxTuples or a deadline.
type Budget struct {
	// MaxTuples bounds insertions into derived relations.
	MaxTuples int
	// MaxRounds bounds fixpoint (or carry-loop) rounds.
	MaxRounds int
	// MaxBytes bounds the estimated bytes of derived tuples materialized.
	MaxBytes int64
}

// ResourceError is the typed error returned when a query exceeds its
// Budget, deadline, or iteration bound: it reports which limit was hit, how
// much was consumed, and the strategy and round evaluation had reached.
// Every ResourceError matches ErrBudgetExceeded via errors.Is; deadline and
// cancellation additionally match context.DeadlineExceeded and
// context.Canceled.
type ResourceError = budget.ResourceError

// ErrBudgetExceeded is the sentinel every *ResourceError matches via
// errors.Is, distinguishing a resource cutoff from a malformed program.
var ErrBudgetExceeded = budget.ErrBudget

// The values a ResourceError's Limit field can take.
const (
	LimitTuples   = budget.LimitTuples   // Budget.MaxTuples exhausted
	LimitRounds   = budget.LimitRounds   // Budget.MaxRounds or WithMaxIterations exhausted
	LimitBytes    = budget.LimitBytes    // Budget.MaxBytes exhausted
	LimitDeadline = budget.LimitDeadline // context deadline expired
	LimitCanceled = budget.LimitCanceled // context canceled
)

// queryConfig collects query options.
type queryConfig struct {
	strategy          Strategy
	allowDisconnected bool
	maxIterations     int
	budget            Budget
	deadline          time.Duration
}

// tracker builds the internal budget tracker for ctx and the configured
// limits (nil when nothing is bounded).
func (c *queryConfig) tracker(ctx context.Context) *budget.Budget {
	return budget.New(ctx, budget.Limits{
		MaxTuples: c.budget.MaxTuples,
		MaxRounds: c.budget.MaxRounds,
		MaxBytes:  c.budget.MaxBytes,
	})
}

// QueryOption customizes a single Query call.
type QueryOption func(*queryConfig)

// WithStrategy forces a particular evaluation strategy.
func WithStrategy(s Strategy) QueryOption {
	return func(c *queryConfig) { c.strategy = s }
}

// WithRelaxedConnectivity lets the Separable strategy accept recursions
// that violate condition 4 of Definition 2.4 (still correct, §5, but the
// selection no longer focuses the disconnected part).
func WithRelaxedConnectivity() QueryOption {
	return func(c *queryConfig) { c.allowDisconnected = true }
}

// WithMaxIterations bounds fixpoint rounds / levels for the strategies
// that support a bound. Exceeding it returns a *ResourceError.
func WithMaxIterations(n int) QueryOption {
	return func(c *queryConfig) { c.maxIterations = n }
}

// WithBudget bounds the resources the query may consume; exceeding any
// limit returns a *ResourceError promptly (limits are checked every
// fixpoint round and at join-inner-loop granularity) with the engine's
// database unmodified.
func WithBudget(b Budget) QueryOption {
	return func(c *queryConfig) { c.budget = b }
}

// WithDeadline gives the query a wall-clock deadline measured from the
// start of evaluation, equivalent to passing QueryCtx a context built with
// context.WithTimeout. Exceeding it returns a *ResourceError matching
// context.DeadlineExceeded.
func WithDeadline(d time.Duration) QueryOption {
	return func(c *queryConfig) { c.deadline = d }
}

// Stats summarizes the work one query performed.
type Stats struct {
	// Strategy actually used (differs from the request only under Auto).
	Strategy Strategy
	// RelationSizes maps each relation the strategy materialized to its
	// peak size — the paper's Definition 4.2 measure.
	RelationSizes map[string]int
	// MaxRelation and MaxRelationSize identify the largest of those.
	MaxRelation     string
	MaxRelationSize int
	// Iterations counts fixpoint/carry-loop rounds; Inserted counts tuple
	// insertions into derived relations.
	Iterations int
	Inserted   int
	// Duration is wall-clock evaluation time.
	Duration time.Duration
}

// Result is the answer to a query.
type Result struct {
	// Columns are the query's distinct variables in first-occurrence
	// order; answers are tuples over these columns.
	Columns []string
	// Stats describes the evaluation.
	Stats Stats

	rel *rel.Relation
	db  *database.Database
}

// Len returns the number of answer tuples.
func (r *Result) Len() int { return r.rel.Len() }

// Rows returns the answers as strings, one slice per tuple, in sorted
// order.
func (r *Result) Rows() [][]string {
	out := make([][]string, 0, r.rel.Len())
	for _, t := range r.rel.Rows() {
		row := make([]string, len(t))
		for i, v := range t {
			row[i] = r.db.Syms.Name(v)
		}
		out = append(out, row)
	}
	sortRows(out)
	return out
}

// True reports whether a fully ground query succeeded (its answer is the
// empty tuple).
func (r *Result) True() bool { return len(r.Columns) == 0 && r.rel.Len() == 1 }

// String renders the result compactly, e.g. "{(radio) (tv)}".
func (r *Result) String() string { return r.rel.Dump(r.db.Syms) }

// ErrUnknownStrategy reports an unrecognized strategy name.
var ErrUnknownStrategy = errors.New("sepdl: unknown strategy")

// testHookEval, when non-nil, runs inside QueryCtx's recovery boundary
// just before strategy dispatch; tests use it to inject failures.
var testHookEval func()

// Query parses and evaluates a query such as "buys(tom, Y)?". It is
// QueryCtx with a background context; use QueryCtx (or WithDeadline /
// WithBudget) when evaluation must be bounded.
func (e *Engine) Query(query string, opts ...QueryOption) (*Result, error) {
	return e.QueryCtx(context.Background(), query, opts...)
}

// QueryCtx parses and evaluates a query under ctx. Cancellation and
// deadlines are honored at fixpoint-round and join-inner-loop granularity
// by every strategy, so a cut-off returns promptly; the engine's database
// is never modified by an aborted (or completed) query. A cut-off returns
// a *ResourceError matching ErrBudgetExceeded and, for context limits,
// context.DeadlineExceeded or context.Canceled.
func (e *Engine) QueryCtx(ctx context.Context, query string, opts ...QueryOption) (res *Result, err error) {
	cfg := queryConfig{strategy: Auto}
	for _, o := range opts {
		o(&cfg)
	}
	q, err := parser.Query(query)
	if err != nil {
		return nil, err
	}
	if cfg.deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.deadline)
		defer cancel()
	}
	bud := cfg.tracker(ctx)
	if err := bud.Err(); err != nil {
		return nil, err // context already expired / canceled
	}
	c := stats.New()
	start := time.Now()

	strategy := cfg.strategy
	idb := e.prog.IDBPreds()
	if !idb[q.Pred] {
		// EDB query: answer directly from the base relations.
		ans, err := eval.Answer(e.db, q)
		if err != nil {
			return nil, err
		}
		return e.result(q, ans, Stats{Strategy: strategy, Duration: time.Since(start)}, c), nil
	}
	if strategy == Auto {
		strategy = e.pick(q, cfg)
	}
	bud.SetStrategy(string(strategy))

	// Last-resort recovery: an internal panic must not take down the
	// caller. A budget abort that escaped a path without its own Guard
	// still surfaces as its typed error; anything else is reported with
	// the strategy and query for the bug report.
	defer func() {
		if r := recover(); r != nil {
			res = nil
			if aerr, ok := budget.AsAbort(r); ok {
				err = aerr
				return
			}
			err = fmt.Errorf("sepdl: internal panic evaluating %q with strategy %s: %v", query, strategy, r)
		}
	}()
	if testHookEval != nil {
		testHookEval()
	}

	var ans *rel.Relation
	switch strategy {
	case Separable:
		ans, err = core.Answer(e.prog, e.db, q, core.EvalOptions{
			Collector:         c,
			Analysis:          e.analysis(q.Pred, cfg.allowDisconnected),
			AllowDisconnected: cfg.allowDisconnected,
			Budget:            bud,
		})
	case MagicSets, MagicSetsSup:
		ans, err = magic.Answer(e.prog, e.db, q, magic.Options{
			Collector:     c,
			MaxIterations: cfg.maxIterations,
			Supplementary: strategy == MagicSetsSup,
			Budget:        bud,
		})
	case Counting:
		ans, err = counting.Answer(e.prog, e.db, q, counting.Options{Collector: c, MaxLevels: cfg.maxIterations, Budget: bud})
	case HenschenNaqvi:
		ans, err = hn.Answer(e.prog, e.db, q, hn.Options{Collector: c, MaxDepth: cfg.maxIterations, Budget: bud})
	case AhoUllman:
		ans, err = aho.Answer(e.prog, e.db, q, aho.Options{Collector: c, MaxIterations: cfg.maxIterations, Budget: bud})
	case Tabling:
		ans, err = tabling.Answer(e.prog, e.db, q, tabling.Options{Collector: c, Budget: bud})
	case SemiNaive, Naive:
		var view *database.Database
		view, err = eval.Run(e.prog, e.db, eval.Options{Collector: c, Naive: strategy == Naive, MaxIterations: cfg.maxIterations, Budget: bud})
		if err == nil {
			ans, err = eval.Answer(view, q)
		}
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownStrategy, strategy)
	}
	if err != nil {
		return nil, err
	}
	st := Stats{Strategy: strategy, Duration: time.Since(start)}
	return e.result(q, ans, st, c), nil
}

func (e *Engine) result(q ast.Atom, ans *rel.Relation, st Stats, c *stats.Collector) *Result {
	st.RelationSizes = c.Sizes
	st.MaxRelation, st.MaxRelationSize = c.MaxRelation()
	st.Iterations = c.Iterations
	st.Inserted = c.Inserted
	return &Result{Columns: eval.QueryVars(q), Stats: st, rel: ans, db: e.db}
}

// analysis returns the cached separability analysis for pred, or nil if
// the recursion is not separable (under the given relaxation).
func (e *Engine) analysis(pred string, relaxed bool) *core.Analysis {
	key := pred
	if relaxed {
		key = pred + "\x00relaxed"
	}
	if a, ok := e.analyses[key]; ok {
		return a
	}
	a, err := core.AnalyzeOpts(e.prog, pred, core.Options{AllowDisconnected: relaxed})
	if err != nil {
		a = nil
	}
	e.analyses[key] = a
	return a
}

// pick implements Auto: Separable when the recursion is separable and the
// query is a selection; Magic Sets for other selections; semi-naive
// otherwise.
func (e *Engine) pick(q ast.Atom, cfg queryConfig) Strategy {
	hasConst := false
	for _, t := range q.Args {
		if !t.IsVar() {
			hasConst = true
			break
		}
	}
	if !hasConst {
		return SemiNaive
	}
	if a := e.analysis(q.Pred, cfg.allowDisconnected); a != nil {
		if sel, err := a.Classify(q); err == nil && sel.Kind != core.SelNone {
			return Separable
		}
	}
	return MagicSets
}

// Explain reports, without evaluating, which strategy Auto would use for
// the query and why.
func (e *Engine) Explain(query string) (string, error) {
	q, err := parser.Query(query)
	if err != nil {
		return "", err
	}
	if !e.prog.IDBPreds()[q.Pred] {
		return fmt.Sprintf("%s is a base predicate: direct index lookup", q.Pred), nil
	}
	hasConst := false
	for _, t := range q.Args {
		if !t.IsVar() {
			hasConst = true
		}
	}
	if !hasConst {
		return "no selection constants: semi-naive bottom-up evaluation", nil
	}
	a, aerr := core.Analyze(e.prog, q.Pred)
	if aerr != nil {
		return fmt.Sprintf("recursion is not separable (%v): Generalized Magic Sets", aerr), nil
	}
	sel, err := a.Classify(q)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("separable recursion, %s: Separable evaluation schema\n%s", sel.Kind, a), nil
}

// AnalyzeSeparability runs the Definition 2.4 test on pred's definition
// and returns the human-readable analysis, or the reason it fails.
func (e *Engine) AnalyzeSeparability(pred string) (report string, separable bool) {
	a, err := core.Analyze(e.prog, pred)
	if err != nil {
		return err.Error(), false
	}
	return a.String(), true
}

func sortRows(rows [][]string) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for k := range a {
			if k >= len(b) {
				return false
			}
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}

// CompilePlan renders the instantiation of the paper's Figure 2 schema
// that the Separable strategy runs for the query — the "compiled" form of
// the recursion (Figures 3 and 4 of the paper for its examples). It fails
// if the recursion is not separable or the query has no constants.
func (e *Engine) CompilePlan(query string) (string, error) {
	q, err := parser.Query(query)
	if err != nil {
		return "", err
	}
	a, err := core.Analyze(e.prog, q.Pred)
	if err != nil {
		return "", err
	}
	return a.CompileText(q)
}

// WriteFacts writes the engine's base facts as sorted, parseable ground
// atoms, suitable for reloading with LoadFacts.
func (e *Engine) WriteFacts(w io.Writer) error { return e.db.WriteFacts(w) }

// Why explains a ground fact: it returns a well-founded derivation tree
// (fact, the rule deriving it, and recursively the supporting facts),
// rendered as indented text. The fact must actually hold.
func (e *Engine) Why(fact string) (string, error) {
	a, err := parser.Query(fact)
	if err != nil {
		return "", err
	}
	ex, err := provenance.New(e.prog, e.db)
	if err != nil {
		return "", err
	}
	n, err := ex.Explain(a)
	if err != nil {
		return "", err
	}
	return n.String(), nil
}
