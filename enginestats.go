package sepdl

import (
	"context"
	"errors"
	"sync/atomic"
)

// EngineStats is a snapshot of the engine's lifetime aggregate counters,
// the observability surface a serving layer exports (sepdld renders these
// as Prometheus counters under the sepdl_* prefix, one per field, in the
// order below). All fields except InFlight are monotonic totals since New.
//
// Accounting model: one Query/QueryCtx/Prepared.Run is one evaluation;
// one QueryBatch/RunBatch is also one evaluation (Batches and
// BatchQueries record the batching). Queries counts evaluations admitted
// past admission control; QueryErrors the admitted evaluations that
// returned an error, so Queries - QueryErrors is the number served
// successfully. Rejections at the admission gate are counted only by
// Overloads/DrainRejections and never reach Queries.
type EngineStats struct {
	// Queries counts evaluations admitted past admission control
	// (Prometheus: sepdl_queries_total).
	Queries uint64
	// QueryErrors counts admitted evaluations that returned any error —
	// budget aborts, deadline expiry, evaluation failures, internal
	// panics (sepdl_query_errors_total).
	QueryErrors uint64
	// Overloads counts admission rejections, drain rejections included
	// (sepdl_overloads_total).
	Overloads uint64
	// DrainRejections counts the subset of Overloads rejected because the
	// engine was draining (sepdl_drain_rejections_total).
	DrainRejections uint64
	// DeadlineAborts counts evaluations cut off by a wall-clock deadline
	// or cancellation (sepdl_deadline_aborts_total); BudgetAborts those
	// cut off by a tuple/round/byte cap (sepdl_budget_aborts_total).
	// Both are subsets of QueryErrors.
	DeadlineAborts uint64
	BudgetAborts   uint64
	// Fallbacks counts evaluations answered by WithFallback's semi-naive
	// retry after the compiled strategy hit its budget
	// (sepdl_fallbacks_total).
	Fallbacks uint64
	// PlanCacheHits/Misses count compiled-plan lookups for IDB
	// evaluations (sepdl_plan_cache_hits_total / _misses_total). With
	// WithPlanCache(false) every lookup is a miss.
	PlanCacheHits   uint64
	PlanCacheMisses uint64
	// ClosureCacheHits/Misses total the Separable evaluator's per-class
	// closure cache hits and fills across all evaluations
	// (sepdl_closure_cache_hits_total / _misses_total).
	ClosureCacheHits   uint64
	ClosureCacheMisses uint64
	// Batches counts QueryBatch/RunBatch evaluations; BatchQueries their
	// total elements (sepdl_batches_total, sepdl_batch_queries_total).
	Batches      uint64
	BatchQueries uint64
	// InFlight is the number of admitted evaluations currently running —
	// a gauge (sepdl_inflight_queries). It returns to zero when the
	// engine is idle; chaos tests assert on that to prove aborted and
	// disconnected queries release their admission slots.
	InFlight int64
	// WAL is the durable store's counter snapshot (sepdld exports the
	// fields as sepdl_wal_* series). All zeros with Durable false on a
	// New (in-RAM) engine.
	WAL StoreStats
}

// engineCounters is the engine's internal atomic mirror of EngineStats.
type engineCounters struct {
	queries         atomic.Uint64
	queryErrors     atomic.Uint64
	overloads       atomic.Uint64
	drainRejections atomic.Uint64
	deadlineAborts  atomic.Uint64
	budgetAborts    atomic.Uint64
	fallbacks       atomic.Uint64
	planHits        atomic.Uint64
	planMisses      atomic.Uint64
	closureHits     atomic.Uint64
	closureMisses   atomic.Uint64
	batches         atomic.Uint64
	batchQueries    atomic.Uint64
	inFlight        atomic.Int64
}

// admitRejected records an admission-gate rejection.
func (c *engineCounters) admitRejected(err error) {
	c.overloads.Add(1)
	if errors.Is(err, ErrDraining) {
		c.drainRejections.Add(1)
	}
}

// planLookup records one compiled-plan cache lookup.
func (c *engineCounters) planLookup(hit bool) {
	if hit {
		c.planHits.Add(1)
	} else {
		c.planMisses.Add(1)
	}
}

// evalFailed classifies and records a failed evaluation, returning err so
// call sites stay one-line.
func (c *engineCounters) evalFailed(err error) error {
	c.queryErrors.Add(1)
	switch {
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		c.deadlineAborts.Add(1)
	case errors.Is(err, ErrBudgetExceeded):
		c.budgetAborts.Add(1)
	}
	return err
}

// evalOK records a successful evaluation's cache and fallback outcome,
// returning res so call sites stay one-line.
func (c *engineCounters) evalOK(res *Result) *Result {
	if res.Stats.FallbackFrom != "" {
		c.fallbacks.Add(1)
	}
	c.closureHits.Add(uint64(res.Stats.ClosureCacheHits))
	c.closureMisses.Add(uint64(res.Stats.ClosureCacheMisses))
	return res
}

// Stats returns a snapshot of the engine's aggregate counters. It is safe
// to call at any time, including concurrently with queries; the fields are
// read individually, so a snapshot taken mid-query may be off by the
// queries in flight but every counter is individually exact.
func (e *Engine) Stats() EngineStats {
	c := &e.counters
	return EngineStats{
		Queries:            c.queries.Load(),
		QueryErrors:        c.queryErrors.Load(),
		Overloads:          c.overloads.Load(),
		DrainRejections:    c.drainRejections.Load(),
		DeadlineAborts:     c.deadlineAborts.Load(),
		BudgetAborts:       c.budgetAborts.Load(),
		Fallbacks:          c.fallbacks.Load(),
		PlanCacheHits:      c.planHits.Load(),
		PlanCacheMisses:    c.planMisses.Load(),
		ClosureCacheHits:   c.closureHits.Load(),
		ClosureCacheMisses: c.closureMisses.Load(),
		Batches:            c.batches.Load(),
		BatchQueries:       c.batchQueries.Load(),
		InFlight:           c.inFlight.Load(),
		WAL:                e.store.Stats(),
	}
}
