package sepdl_test

import (
	"context"
	"errors"
	"fmt"
	"time"

	"sepdl"
)

// The quick-start flow: Example 1.1 of the paper, with the strategy chosen
// automatically.
func Example() {
	e := sepdl.New()
	e.LoadProgram(`
		buys(X, Y) :- friend(X, W) & buys(W, Y).
		buys(X, Y) :- idol(X, W) & buys(W, Y).
		buys(X, Y) :- perfectFor(X, Y).
	`)
	e.LoadFacts(`friend(tom, dick). idol(dick, mary). perfectFor(mary, radio).`)

	res, _ := e.Query(`buys(tom, Y)?`)
	fmt.Println(res.Stats.Strategy)
	for _, row := range res.Rows() {
		fmt.Println(row[0])
	}
	// Output:
	// separable
	// radio
}

// Forcing a strategy and reading the paper's measure (peak relation sizes).
func ExampleEngine_Query() {
	e := sepdl.New()
	e.LoadProgram(`
		buys(X, Y) :- friend(X, W) & buys(W, Y).
		buys(X, Y) :- perfectFor(X, Y).
	`)
	e.LoadFacts(`friend(a, b). friend(b, c). perfectFor(c, g).`)

	res, _ := e.Query(`buys(a, Y)?`, sepdl.WithStrategy(sepdl.Separable))
	fmt.Println("answers:", res.Len())
	fmt.Println("seen1 peak:", res.Stats.RelationSizes["seen1"])
	// Output:
	// answers: 1
	// seen1 peak: 3
}

// The separability analysis of Definition 2.4, explained.
func ExampleEngine_AnalyzeSeparability() {
	e := sepdl.New()
	e.LoadProgram(`
		sg(X, Y) :- flat(X, Y).
		sg(X, Y) :- up(X, U) & sg(U, V) & down(V, Y).
	`)
	_, separable := e.AnalyzeSeparability("sg")
	fmt.Println("same-generation separable:", separable)
	// Output:
	// same-generation separable: false
}

// Compiling a query plan: the instantiated Figure 2 schema (Figure 3 of
// the paper for this query).
func ExampleEngine_CompilePlan() {
	e := sepdl.New()
	e.LoadProgram(`
		buys(X, Y) :- friend(X, W) & buys(W, Y).
		buys(X, Y) :- perfectFor(X, Y).
	`)
	plan, _ := e.CompilePlan(`buys(tom, Y)?`)
	fmt.Print(plan)
	// Output:
	// carry1(tom);
	// seen1(V1) := carry1(V1);
	// while carry1 not empty do
	//     carry1(b00) := carry1(V1) & friend(V1, b00);
	//     carry1 := carry1 - seen1;
	//     seen1 := seen1 ∪ carry1;
	// endwhile;
	// carry2(V2) := seen1(V1) & perfectFor(V1, V2);
	// seen2(V2) := carry2(V2);
	// ans(V2) := seen2(V2);
}

// Explaining what the Auto strategy would do.
func ExampleEngine_Explain() {
	e := sepdl.New()
	e.LoadProgram(`
		path(X, Y) :- edge(X, Y).
		path(X, Y) :- edge(X, W) & path(W, Y).
	`)
	why, _ := e.Explain(`path(a, Y)?`)
	fmt.Println(why[:len("separable recursion")])
	// Output:
	// separable recursion
}

// Bounding a query: a tuple budget cuts off the Magic strategy's Ω(n²)
// materialization with a typed error, and the same budget lets the
// Separable schema finish.
func ExampleEngine_QueryCtx() {
	e := sepdl.New()
	e.LoadProgram(`
		buys(X, Y) :- friend(X, W) & buys(W, Y).
		buys(X, Y) :- perfectFor(X, Y).
	`)
	for i := 0; i < 59; i++ {
		e.AddFact("friend", fmt.Sprintf("a%02d", i), fmt.Sprintf("a%02d", i+1))
	}
	for i := 0; i < 60; i++ {
		e.AddFact("perfectFor", fmt.Sprintf("a%02d", i), fmt.Sprintf("g%02d", i))
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	limit := sepdl.WithBudget(sepdl.Budget{MaxTuples: 500})

	_, err := e.QueryCtx(ctx, `buys(a00, Y)?`, sepdl.WithStrategy(sepdl.MagicSets), limit)
	var re *sepdl.ResourceError
	if errors.As(err, &re) {
		fmt.Println("magic cut off at limit:", re.Limit)
	}

	res, err := e.QueryCtx(ctx, `buys(a00, Y)?`, sepdl.WithStrategy(sepdl.Separable), limit)
	if err != nil {
		panic(err)
	}
	fmt.Println("separable answers:", res.Len())
	// Output:
	// magic cut off at limit: tuples
	// separable answers: 60
}
