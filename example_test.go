package sepdl_test

import (
	"fmt"

	"sepdl"
)

// The quick-start flow: Example 1.1 of the paper, with the strategy chosen
// automatically.
func Example() {
	e := sepdl.New()
	e.LoadProgram(`
		buys(X, Y) :- friend(X, W) & buys(W, Y).
		buys(X, Y) :- idol(X, W) & buys(W, Y).
		buys(X, Y) :- perfectFor(X, Y).
	`)
	e.LoadFacts(`friend(tom, dick). idol(dick, mary). perfectFor(mary, radio).`)

	res, _ := e.Query(`buys(tom, Y)?`)
	fmt.Println(res.Stats.Strategy)
	for _, row := range res.Rows() {
		fmt.Println(row[0])
	}
	// Output:
	// separable
	// radio
}

// Forcing a strategy and reading the paper's measure (peak relation sizes).
func ExampleEngine_Query() {
	e := sepdl.New()
	e.LoadProgram(`
		buys(X, Y) :- friend(X, W) & buys(W, Y).
		buys(X, Y) :- perfectFor(X, Y).
	`)
	e.LoadFacts(`friend(a, b). friend(b, c). perfectFor(c, g).`)

	res, _ := e.Query(`buys(a, Y)?`, sepdl.WithStrategy(sepdl.Separable))
	fmt.Println("answers:", res.Len())
	fmt.Println("seen1 peak:", res.Stats.RelationSizes["seen1"])
	// Output:
	// answers: 1
	// seen1 peak: 3
}

// The separability analysis of Definition 2.4, explained.
func ExampleEngine_AnalyzeSeparability() {
	e := sepdl.New()
	e.LoadProgram(`
		sg(X, Y) :- flat(X, Y).
		sg(X, Y) :- up(X, U) & sg(U, V) & down(V, Y).
	`)
	_, separable := e.AnalyzeSeparability("sg")
	fmt.Println("same-generation separable:", separable)
	// Output:
	// same-generation separable: false
}

// Compiling a query plan: the instantiated Figure 2 schema (Figure 3 of
// the paper for this query).
func ExampleEngine_CompilePlan() {
	e := sepdl.New()
	e.LoadProgram(`
		buys(X, Y) :- friend(X, W) & buys(W, Y).
		buys(X, Y) :- perfectFor(X, Y).
	`)
	plan, _ := e.CompilePlan(`buys(tom, Y)?`)
	fmt.Print(plan)
	// Output:
	// carry1(tom);
	// seen1(V1) := carry1(V1);
	// while carry1 not empty do
	//     carry1(b00) := carry1(V1) & friend(V1, b00);
	//     carry1 := carry1 - seen1;
	//     seen1 := seen1 ∪ carry1;
	// endwhile;
	// carry2(V2) := seen1(V1) & perfectFor(V1, V2);
	// seen2(V2) := carry2(V2);
	// ans(V2) := seen2(V2);
}

// Explaining what the Auto strategy would do.
func ExampleEngine_Explain() {
	e := sepdl.New()
	e.LoadProgram(`
		path(X, Y) :- edge(X, Y).
		path(X, Y) :- edge(X, W) & path(W, Y).
	`)
	why, _ := e.Explain(`path(a, Y)?`)
	fmt.Println(why[:len("separable recursion")])
	// Output:
	// separable recursion
}
