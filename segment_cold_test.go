package sepdl

import (
	"fmt"
	"testing"
	"time"

	"sepdl/internal/leakcheck"
)

// coldGraphFacts builds a dense-ish layered edge set big enough to
// outgrow a small memtable budget several times over.
func coldGraphFacts(n int) [][]string {
	var out [][]string
	for i := 0; i < n; i++ {
		out = append(out, []string{"edge", fmt.Sprintf("n%03d", i), fmt.Sprintf("n%03d", (i+1)%n)})
		if i%3 == 0 {
			out = append(out, []string{"edge", fmt.Sprintf("n%03d", i), fmt.Sprintf("n%03d", (i+7)%n)})
		}
	}
	return out
}

const coldTCProgram = `
path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, Z), path(Z, Y).
`

// TestColdStorageEquivalence is the tentpole acceptance test: a durable
// engine whose dataset outgrows a tiny memtable budget — forcing flushes
// into segment files and rebases onto the cold tier mid-ingest — must
// answer byte-identically to a fully resident oracle under every
// strategy, both live and after recovery, with a block cache far smaller
// than the data.
func TestColdStorageEquivalence(t *testing.T) {
	leakcheck.CheckResources(t)
	dir := t.TempDir()
	facts := coldGraphFacts(96)

	e, err := Open(dir,
		WithMemtableBytes(2<<10),   // ~2 KB: a few dozen tuples per flush
		WithBlockCacheBytes(8<<10), // much smaller than the dataset
		WithCheckpointBytes(-1),    // isolate the memtable trigger
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.LoadProgram(coldTCProgram); err != nil {
		t.Fatal(err)
	}
	oracle := New()
	if err := oracle.LoadProgram(coldTCProgram); err != nil {
		t.Fatal(err)
	}
	for _, f := range facts {
		if err := e.AddFact(f[0], f[1:]...); err != nil {
			t.Fatal(err)
		}
		if err := oracle.AddFact(f[0], f[1:]...); err != nil {
			t.Fatal(err)
		}
	}

	// The memtable trigger runs checkpoints in the background; wait for
	// at least one, then force a final flush so the tail is cold too.
	deadline := time.Now().Add(10 * time.Second)
	for e.Stats().WAL.Checkpoints == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if e.Stats().WAL.Checkpoints == 0 {
		t.Fatal("memtable budget never triggered a checkpoint")
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	st := e.Stats().WAL.Segment
	if st.SegmentFiles == 0 || st.SegmentBuilds == 0 || st.SegmentTuples == 0 {
		t.Fatalf("no segments built: %+v", st)
	}

	queries := []string{
		"path(n000, Y)?",
		"path(X, n005)?",
		"path(n010, n011)?",
		"edge(n000, Y)?",
		"path(X, Y)?",
	}
	assertEnginesAgree(t, "live cold vs resident", e, oracle, queries)

	// Cold reads must actually stream from disk: the block cache sees
	// traffic once queries touch segment-resident tuples.
	if _, _, bytesRead := cacheTraffic(e); bytesRead == 0 {
		t.Fatal("queries never read a segment block — cold tier unused")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// Recover cold and compare again.
	re, err := Open(dir, WithMemtableBytes(2<<10), WithBlockCacheBytes(8<<10))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	assertEnginesAgree(t, "recovered cold vs resident", re, oracle, queries)

	// And the explicit in-RAM oracle mode: same directory, cold storage
	// off, everything replayed into RAM.
	ram, err := Open(dir, WithColdStorage(false))
	if err != nil {
		t.Fatal(err)
	}
	defer ram.Close()
	assertEnginesAgree(t, "recovered cold vs coldOff recovery", re, ram, queries)
}

// cacheTraffic returns the engine store's block-cache counters.
func cacheTraffic(e *Engine) (hits, misses, bytesRead uint64) {
	s := e.Stats().WAL.Segment
	return s.BlockCacheHits, s.BlockCacheMisses, s.SegmentBytesRead
}

// TestColdStorageWritesAfterRebase: writes landing between checkpoints
// stay queryable from the overlay while older tuples serve cold.
func TestColdStorageWritesAfterRebase(t *testing.T) {
	leakcheck.CheckResources(t)
	dir := t.TempDir()
	e, err := Open(dir, WithCheckpointBytes(-1))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.LoadProgram(coldTCProgram); err != nil {
		t.Fatal(err)
	}
	if err := e.AddFact("edge", "a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint write: overlay on top of the cold base.
	if err := e.AddFact("edge", "b", "c"); err != nil {
		t.Fatal(err)
	}
	r, err := e.Query("path(a, Y)?")
	if err != nil {
		t.Fatal(err)
	}
	if got := r.String(); got != "{(b) (c)}" {
		t.Fatalf("mixed-tier query = %q", got)
	}
	// Second checkpoint compacts overlay + cold into one new segment.
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	r, err = e.Query("path(a, Y)?")
	if err != nil {
		t.Fatal(err)
	}
	if got := r.String(); got != "{(b) (c)}" {
		t.Fatalf("post-compaction query = %q", got)
	}
}
