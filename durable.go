package sepdl

import (
	"errors"
	"fmt"

	"sepdl/internal/ast"
	"sepdl/internal/database"
	"sepdl/internal/parser"
	"sepdl/internal/rel"
	"sepdl/internal/segment"
	"sepdl/internal/wal"
)

// This file is the durability layer over the core engine: Open builds an
// Engine whose writes go through a write-ahead log (internal/wal) before
// they touch memory, recovering the persisted state first. Everything
// else about the engine — snapshots, admission control, strategies — is
// identical to New; queries never touch the disk.

// ErrEngineClosed reports a write on an engine whose Close has run.
var ErrEngineClosed = errors.New("sepdl: engine closed")

// StoreStats is the durable store's counter snapshot, re-exported so
// callers outside the module can name EngineStats.WAL's type.
type StoreStats = database.StoreStats

// WithCheckpointBytes sets the log-growth threshold (bytes in the current
// segment) at which a durable engine checkpoints and compacts its log.
// 0 (the default) uses wal.DefaultCheckpointBytes; a negative value
// disables automatic checkpoints (the log grows until Checkpoint is
// called). Ignored by New.
func WithCheckpointBytes(n int64) EngineOption {
	return func(e *Engine) { e.ckptBytes = n }
}

// WithSyncWrites controls fsync-per-write on a durable engine. The
// default (true) fsyncs every acknowledged write — the full crash
// guarantee. false batches durability: writes reach the OS immediately
// but are only guaranteed on disk at checkpoints and Close, trading the
// per-write guarantee for ingest throughput. Ignored by New.
func WithSyncWrites(sync bool) EngineOption {
	return func(e *Engine) { e.noSync = !sync }
}

// WithMemtableBytes bounds the in-RAM overlay of a durable engine: when
// the resident rows on top of the cold tier outgrow n bytes, the engine
// checkpoints and rebases onto the fresh segment regardless of log
// growth, so memory stays bounded by the memtable budget plus the block
// cache even when the dataset does not fit in RAM. 0 (the default)
// leaves flushing to the log-growth threshold alone. Ignored by New and
// by engines running WithColdStorage(false).
func WithMemtableBytes(n int64) EngineOption {
	return func(e *Engine) { e.memtableBytes = n }
}

// WithBlockCacheBytes budgets the decoded-block cache segment reads go
// through: the disk-warm working set. 0 (the default) uses
// segment.DefaultCacheBytes; negative disables retention, making every
// cold read hit the disk (the honest disk-cold benchmark mode). Ignored
// by New.
func WithBlockCacheBytes(n int64) EngineOption {
	return func(e *Engine) { e.blockCacheBytes = n }
}

// WithColdStorage controls whether a durable engine serves checkpointed
// data from segment files (the default) or keeps everything resident.
// false recovers segment checkpoints by replaying them fact by fact into
// RAM and never rebases after a flush — the in-RAM oracle the
// equivalence suites and benches compare cold execution against.
// Ignored by New.
func WithColdStorage(on bool) EngineOption {
	return func(e *Engine) { e.coldOff = !on }
}

// Open returns an engine whose facts and rules are durable in dir,
// creating the directory on first use. Open replays the existing log —
// checkpoint first, then every acknowledged write after it, truncating a
// tail torn by a crash — so the returned engine holds exactly the state
// every acknowledged write built, and is ready to serve queries. All
// EngineOptions apply as with New. The caller must Close the engine to
// release the log; a crash instead of a Close loses nothing acknowledged.
func Open(dir string, opts ...EngineOption) (*Engine, error) {
	e := New(opts...)
	cacheBytes := e.blockCacheBytes
	if cacheBytes == 0 {
		cacheBytes = segment.DefaultCacheBytes
	}
	st, err := wal.Open(dir, wal.Options{
		CheckpointBytes: e.ckptBytes,
		NoSync:          e.noSync,
		// The codec is attached even with cold storage off: existing
		// segment-backed checkpoints must stay readable (Recover then
		// replays them fact by fact instead of installing cold bases).
		Checkpointer: segment.NewCodec(dir, cacheBytes, 0),
		Tick: func() error {
			if e.closed.Load() {
				return ErrEngineClosed
			}
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	if err := e.attach(st); err != nil {
		st.Close()
		return nil, err
	}
	return e, nil
}

// attach installs a recovered durable store as the engine's write-ahead
// seam: replay the persisted history into the in-memory state, then start
// logging. Split from Open so tests can attach a store with fault hooks.
func (e *Engine) attach(st database.Store) error {
	var sink database.RecoverSink = recoverSink{e}
	if !e.coldOff {
		// The ColdSink extension lets a segment-backed checkpoint install
		// its predicates as disk-resident cold bases instead of replaying
		// every fact into RAM.
		sink = coldRecoverSink{recoverSink{e}}
	}
	if err := st.Recover(sink); err != nil {
		return fmt.Errorf("sepdl: recovering %w", err)
	}
	e.mu.Lock()
	e.store = st
	e.bumpDBRevLocked()
	e.mu.Unlock()
	return nil
}

// Close waits out any in-flight checkpoint and releases the durable
// store's files; writes after Close fail with the store's closed error.
// The caller must have stopped its writers (a serving layer drains
// first); queries need nothing from the store and keep working against
// the in-memory state. Close is idempotent and a no-op on New engines.
func (e *Engine) Close() error {
	e.closed.Store(true)
	e.ckptWG.Wait()
	return e.store.Close()
}

// Checkpoint forces a checkpoint synchronously: the log is rotated under
// the writer lock and the engine's exact state at that instant is written
// as the new recovery baseline, superseding the sealed segments. On a
// New engine it is a no-op. Automatic checkpoints (WithCheckpointBytes)
// make calling this optional; it exists for maintenance windows and
// tests.
func (e *Engine) Checkpoint() error {
	e.mu.Lock()
	seq, err := e.store.Rotate()
	if err != nil {
		e.mu.Unlock()
		return err
	}
	prog := e.state.prog.String()
	snap := e.db.Snapshot()
	e.mu.Unlock()
	if seq == 0 {
		return nil // MemStore: nothing to checkpoint
	}
	if err := e.store.WriteCheckpoint(seq, prog, snap); err != nil {
		return err
	}
	e.rebaseCold()
	return nil
}

// maybeCheckpointLocked starts a background checkpoint when the log has
// outgrown its threshold and none is already running. The rotation and
// state snapshot happen here, under the writer lock the caller holds, so
// the checkpoint is exactly the state the sealed segments produce; the
// expensive write streams from the immutable snapshot off-lock,
// concurrent with new appends and with readers.
func (e *Engine) maybeCheckpointLocked() {
	if !e.needCheckpointLocked() || !e.ckptBusy.CompareAndSwap(false, true) {
		return
	}
	seq, err := e.store.Rotate()
	if err != nil {
		e.ckptBusy.Store(false)
		return
	}
	prog := e.state.prog.String()
	snap := e.db.Snapshot()
	st := e.store
	e.ckptWG.Add(1)
	go func() {
		defer e.ckptWG.Done()
		defer e.ckptBusy.Store(false)
		// Failure is recorded in StoreStats.CheckpointErrors; the sealed
		// segments stay live, so nothing acknowledged is at risk and the
		// next threshold crossing retries.
		if st.WriteCheckpoint(seq, prog, snap) == nil {
			e.rebaseCold()
		}
	}()
}

// needCheckpointLocked reports whether a background checkpoint should
// start: the store's log-growth threshold, or — on a cold-storage engine
// with a memtable budget — the in-RAM overlay outgrowing that budget.
func (e *Engine) needCheckpointLocked() bool {
	if e.store.NeedCheckpoint() {
		return true
	}
	if e.memtableBytes <= 0 || e.coldOff {
		return false
	}
	if _, ok := e.store.(database.ColdStore); !ok {
		return false // flushing would not shrink the overlay
	}
	return e.db.OverlayBytes() >= e.memtableBytes
}

// rebaseCold swaps every predicate the newest checkpoint covered onto
// its segment-backed cold base, dropping the flushed rows from RAM while
// keeping writes that landed after the rotation as the new overlay. The
// database revision is NOT bumped: the content is identical, so plan and
// closure caches stay warm. No-op for flat stores and with cold storage
// off.
func (e *Engine) rebaseCold() {
	if e.coldOff {
		return
	}
	cs, ok := e.store.(database.ColdStore)
	if !ok {
		return
	}
	set := cs.ColdSet()
	if set == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, pred := range set.Preds() {
		if base, arity, ok := set.Cold(pred); ok {
			e.db.SetCold(pred, arity, base)
		}
	}
}

// recoverSink applies the store's replayed history directly to the
// engine's in-memory state, without logging (the records are already in
// the log) and without strict checks (the writes were accepted when first
// acknowledged; a policy change must not brick an existing database).
// Recovery runs single-threaded before the engine serves, but the sink
// locks anyway so a misuse degrades to contention.
type recoverSink struct{ e *Engine }

func (s recoverSink) AddFact(pred string, args []string) error {
	s.e.mu.Lock()
	defer s.e.mu.Unlock()
	_, err := s.e.db.AddFact(pred, args...)
	return err
}

func (s recoverSink) LoadFacts(src string) error {
	fs, err := parser.Facts(src)
	if err != nil {
		return err
	}
	s.e.mu.Lock()
	defer s.e.mu.Unlock()
	return s.e.db.Load(fs)
}

func (s recoverSink) LoadProgram(src string) error {
	s.e.mu.Lock()
	defer s.e.mu.Unlock()
	combined, err := s.e.compileProgramLocked(src, false)
	if err != nil {
		return err
	}
	s.e.state = newProgState(combined)
	return nil
}

func (s recoverSink) ClearProgram() error {
	s.e.mu.Lock()
	defer s.e.mu.Unlock()
	s.e.state = newProgState(&ast.Program{})
	return nil
}

// coldRecoverSink extends recoverSink with the database.ColdSink methods
// a segment-backed checkpoint uses to install disk-resident bases
// instead of replaying facts. InstallSymbols must run before anything
// else interns a name: cold tuples reference interned ids, so the
// recovered table has to assign exactly the ids the segment recorded.
type coldRecoverSink struct{ recoverSink }

func (s coldRecoverSink) InstallSymbols(names []string) error {
	s.e.mu.Lock()
	defer s.e.mu.Unlock()
	tab := s.e.db.SymbolTable()
	for i, name := range names {
		if got := tab.Intern(name); int(got) != i {
			return fmt.Errorf("sepdl: recovering segment symbols: %q interned as %d, want %d", name, got, i)
		}
	}
	return nil
}

func (s coldRecoverSink) InstallCold(pred string, arity int, base rel.ColdBase) error {
	s.e.mu.Lock()
	defer s.e.mu.Unlock()
	return s.e.db.SetCold(pred, arity, base)
}

var _ database.ColdSink = coldRecoverSink{}
