package sepdl

import (
	"errors"
	"fmt"

	"sepdl/internal/ast"
	"sepdl/internal/database"
	"sepdl/internal/parser"
	"sepdl/internal/wal"
)

// This file is the durability layer over the core engine: Open builds an
// Engine whose writes go through a write-ahead log (internal/wal) before
// they touch memory, recovering the persisted state first. Everything
// else about the engine — snapshots, admission control, strategies — is
// identical to New; queries never touch the disk.

// ErrEngineClosed reports a write on an engine whose Close has run.
var ErrEngineClosed = errors.New("sepdl: engine closed")

// StoreStats is the durable store's counter snapshot, re-exported so
// callers outside the module can name EngineStats.WAL's type.
type StoreStats = database.StoreStats

// WithCheckpointBytes sets the log-growth threshold (bytes in the current
// segment) at which a durable engine checkpoints and compacts its log.
// 0 (the default) uses wal.DefaultCheckpointBytes; a negative value
// disables automatic checkpoints (the log grows until Checkpoint is
// called). Ignored by New.
func WithCheckpointBytes(n int64) EngineOption {
	return func(e *Engine) { e.ckptBytes = n }
}

// WithSyncWrites controls fsync-per-write on a durable engine. The
// default (true) fsyncs every acknowledged write — the full crash
// guarantee. false batches durability: writes reach the OS immediately
// but are only guaranteed on disk at checkpoints and Close, trading the
// per-write guarantee for ingest throughput. Ignored by New.
func WithSyncWrites(sync bool) EngineOption {
	return func(e *Engine) { e.noSync = !sync }
}

// Open returns an engine whose facts and rules are durable in dir,
// creating the directory on first use. Open replays the existing log —
// checkpoint first, then every acknowledged write after it, truncating a
// tail torn by a crash — so the returned engine holds exactly the state
// every acknowledged write built, and is ready to serve queries. All
// EngineOptions apply as with New. The caller must Close the engine to
// release the log; a crash instead of a Close loses nothing acknowledged.
func Open(dir string, opts ...EngineOption) (*Engine, error) {
	e := New(opts...)
	st, err := wal.Open(dir, wal.Options{
		CheckpointBytes: e.ckptBytes,
		NoSync:          e.noSync,
		Tick: func() error {
			if e.closed.Load() {
				return ErrEngineClosed
			}
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	if err := e.attach(st); err != nil {
		st.Close()
		return nil, err
	}
	return e, nil
}

// attach installs a recovered durable store as the engine's write-ahead
// seam: replay the persisted history into the in-memory state, then start
// logging. Split from Open so tests can attach a store with fault hooks.
func (e *Engine) attach(st database.Store) error {
	if err := st.Recover(recoverSink{e}); err != nil {
		return fmt.Errorf("sepdl: recovering %w", err)
	}
	e.mu.Lock()
	e.store = st
	e.bumpDBRevLocked()
	e.mu.Unlock()
	return nil
}

// Close waits out any in-flight checkpoint and releases the durable
// store's files; writes after Close fail with the store's closed error.
// The caller must have stopped its writers (a serving layer drains
// first); queries need nothing from the store and keep working against
// the in-memory state. Close is idempotent and a no-op on New engines.
func (e *Engine) Close() error {
	e.closed.Store(true)
	e.ckptWG.Wait()
	return e.store.Close()
}

// Checkpoint forces a checkpoint synchronously: the log is rotated under
// the writer lock and the engine's exact state at that instant is written
// as the new recovery baseline, superseding the sealed segments. On a
// New engine it is a no-op. Automatic checkpoints (WithCheckpointBytes)
// make calling this optional; it exists for maintenance windows and
// tests.
func (e *Engine) Checkpoint() error {
	e.mu.Lock()
	seq, err := e.store.Rotate()
	if err != nil {
		e.mu.Unlock()
		return err
	}
	prog := e.state.prog.String()
	snap := e.db.Snapshot()
	e.mu.Unlock()
	if seq == 0 {
		return nil // MemStore: nothing to checkpoint
	}
	return e.store.WriteCheckpoint(seq, prog, snap.WriteFacts)
}

// maybeCheckpointLocked starts a background checkpoint when the log has
// outgrown its threshold and none is already running. The rotation and
// state snapshot happen here, under the writer lock the caller holds, so
// the checkpoint is exactly the state the sealed segments produce; the
// expensive write streams from the immutable snapshot off-lock,
// concurrent with new appends and with readers.
func (e *Engine) maybeCheckpointLocked() {
	if !e.store.NeedCheckpoint() || !e.ckptBusy.CompareAndSwap(false, true) {
		return
	}
	seq, err := e.store.Rotate()
	if err != nil {
		e.ckptBusy.Store(false)
		return
	}
	prog := e.state.prog.String()
	snap := e.db.Snapshot()
	st := e.store
	e.ckptWG.Add(1)
	go func() {
		defer e.ckptWG.Done()
		defer e.ckptBusy.Store(false)
		// Failure is recorded in StoreStats.CheckpointErrors; the sealed
		// segments stay live, so nothing acknowledged is at risk and the
		// next threshold crossing retries.
		st.WriteCheckpoint(seq, prog, snap.WriteFacts)
	}()
}

// recoverSink applies the store's replayed history directly to the
// engine's in-memory state, without logging (the records are already in
// the log) and without strict checks (the writes were accepted when first
// acknowledged; a policy change must not brick an existing database).
// Recovery runs single-threaded before the engine serves, but the sink
// locks anyway so a misuse degrades to contention.
type recoverSink struct{ e *Engine }

func (s recoverSink) AddFact(pred string, args []string) error {
	s.e.mu.Lock()
	defer s.e.mu.Unlock()
	_, err := s.e.db.AddFact(pred, args...)
	return err
}

func (s recoverSink) LoadFacts(src string) error {
	fs, err := parser.Facts(src)
	if err != nil {
		return err
	}
	s.e.mu.Lock()
	defer s.e.mu.Unlock()
	return s.e.db.Load(fs)
}

func (s recoverSink) LoadProgram(src string) error {
	s.e.mu.Lock()
	defer s.e.mu.Unlock()
	combined, err := s.e.compileProgramLocked(src, false)
	if err != nil {
		return err
	}
	s.e.state = newProgState(combined)
	return nil
}

func (s recoverSink) ClearProgram() error {
	s.e.mu.Lock()
	defer s.e.mu.Unlock()
	s.e.state = newProgState(&ast.Program{})
	return nil
}
