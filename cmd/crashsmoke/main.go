// Command crashsmoke is the end-to-end kill-loop harness for the durable
// engine: it repeatedly spawns a child process (itself, with -child) that
// ingests facts into a write-ahead-logged engine and prints "acked N"
// after each durably acknowledged write, SIGKILLs the child at a
// different point each iteration, reopens the data directory, and
// verifies the recovered state:
//
//  1. Durability — every fact the child acknowledged before the kill is
//     present after recovery.
//  2. Prefix consistency — the recovered facts are exactly a prefix of
//     the ingest order: no gaps, no partial records, nothing from after
//     the tear.
//  3. Equivalence — a battery of queries under every evaluation strategy
//     returns byte-identical results to a fresh in-RAM engine loaded
//     with the same prefix (scope rejections must match too).
//
// Usage:
//
//	crashsmoke [-iterations 12] [-facts 400] [-dir DIR] [-memtable-bytes N] [-v]
//
// With -memtable-bytes > 0 the child runs over the segment-backed store:
// the overlay budget forces background checkpoints that flush facts into
// sorted segment files mid-ingest, so kills land before, during, and
// after segment builds, and recovery must serve the surviving prefix
// from whatever mix of cold segments and log tail the tear left behind.
//
// Exit status 0 when every iteration verifies, 1 otherwise. The harness
// is wired into `make crash-smoke`; it is a real-process complement to
// the in-process fault-injection tests in internal/wal and the root
// package.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"

	"sepdl"
)

const program = `
buys(X, Y) :- friend(X, W) & buys(W, Y).
buys(X, Y) :- idol(X, W) & buys(W, Y).
buys(X, Y) :- perfectFor(X, Y).
`

const baseFacts = `
friend(a, b). friend(a, c). friend(b, d). friend(c, d).
idol(d, e). idol(a, e).
`

// factArgs returns the ingest sequence's i-th fact.
func factArgs(i int) (pred, c, g string) {
	// Attach the dynamic facts to nodes reachable from a, so recursive
	// queries actually traverse them.
	owners := []string{"a", "b", "c", "d", "e", "z"}
	return "perfectFor", owners[i%len(owners)], fmt.Sprintf("g%d", i)
}

var strategies = []sepdl.Strategy{
	sepdl.Separable, sepdl.MagicSets, sepdl.MagicSetsSup, sepdl.Counting,
	sepdl.HenschenNaqvi, sepdl.AhoUllman, sepdl.Tabling, sepdl.SemiNaive,
	sepdl.Naive,
}

func main() {
	var (
		child      = flag.Bool("child", false, "internal: run as the ingesting child")
		dir        = flag.String("dir", "", "data directory (default: a temp dir)")
		iterations = flag.Int("iterations", 12, "kill-recover-verify cycles")
		facts      = flag.Int("facts", 400, "facts the child tries to ingest per run")
		memtable   = flag.Int64("memtable-bytes", 0, "overlay budget triggering segment flushes (0: flat checkpoints only)")
		verbose    = flag.Bool("v", false, "log each iteration")
	)
	flag.Parse()
	if *child {
		os.Exit(runChild(*dir, *facts, *memtable))
	}
	os.Exit(runParent(*dir, *iterations, *facts, *memtable, *verbose))
}

// storeOpts returns the engine options both the child and the verifier
// open the directory with, so recovery sees the same tiering config the
// writer ran under.
func storeOpts(memtable int64) []sepdl.EngineOption {
	if memtable <= 0 {
		return nil
	}
	return []sepdl.EngineOption{sepdl.WithMemtableBytes(memtable)}
}

// runChild ingests facts into the durable engine, printing "acked N"
// only after AddFact returned — i.e. after the record is fsynced. It is
// the process the parent kills mid-write.
func runChild(dir string, n int, memtable int64) int {
	e, err := sepdl.Open(dir, storeOpts(memtable)...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "child:", err)
		return 1
	}
	if e.ProgramText() == "" {
		if err := e.LoadProgram(program); err != nil {
			fmt.Fprintln(os.Stderr, "child:", err)
			return 1
		}
		if err := e.LoadFacts(baseFacts); err != nil {
			fmt.Fprintln(os.Stderr, "child:", err)
			return 1
		}
	}
	start := e.NumFacts() - 6 // dynamic facts already recovered
	for i := start; i < n; i++ {
		pred, c, g := factArgs(i)
		if err := e.AddFact(pred, c, g); err != nil {
			fmt.Fprintln(os.Stderr, "child:", err)
			return 1
		}
		fmt.Printf("acked %d\n", i)
	}
	if err := e.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "child:", err)
		return 1
	}
	return 0
}

// runParent drives the kill loop.
func runParent(dir string, iterations, facts int, memtable int64, verbose bool) int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "crashsmoke:", err)
		return 1
	}
	if dir == "" {
		tmp, err := os.MkdirTemp("", "crashsmoke-*")
		if err != nil {
			fmt.Fprintln(os.Stderr, "crashsmoke:", err)
			return 1
		}
		defer os.RemoveAll(tmp)
		dir = filepath.Join(tmp, "wal")
	}

	failures := 0
	for it := 0; it < iterations; it++ {
		// Kill at a different acknowledged count each round; past the
		// ingest size the child finishes and exits on its own (the clean
		// shutdown is part of the sweep too).
		killAt := 1 + (it*37)%facts
		lastAcked, err := spawnAndKill(self, dir, facts, killAt, memtable)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crashsmoke: iteration %d: %v\n", it, err)
			return 1
		}
		if err := verify(dir, lastAcked, facts, memtable); err != nil {
			fmt.Fprintf(os.Stderr, "crashsmoke: iteration %d (acked %d): FAIL: %v\n", it, lastAcked, err)
			failures++
			continue
		}
		if verbose {
			fmt.Printf("crashsmoke: iteration %d: killed after ack %d, recovery verified\n", it, lastAcked)
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "crashsmoke: %d/%d iterations failed\n", failures, iterations)
		return 1
	}
	fmt.Printf("crashsmoke: %d kill-recover-verify iterations passed (%d facts/run)\n", iterations, facts)
	return 0
}

// spawnAndKill runs the child and SIGKILLs it once it has acknowledged
// killAt dynamic facts, returning the highest index the parent saw
// acknowledged (-1 if none).
func spawnAndKill(self, dir string, facts, killAt int, memtable int64) (lastAcked int, err error) {
	cmd := exec.Command(self, "-child", "-dir", dir, "-facts", strconv.Itoa(facts),
		"-memtable-bytes", strconv.FormatInt(memtable, 10))
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return -1, err
	}
	if err := cmd.Start(); err != nil {
		return -1, err
	}
	lastAcked = -1
	seen := 0
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "acked ") {
			continue
		}
		n, perr := strconv.Atoi(strings.TrimPrefix(line, "acked "))
		if perr != nil {
			continue
		}
		lastAcked = n
		seen++
		if seen >= killAt {
			cmd.Process.Kill() // SIGKILL: no deferred cleanup, no final fsync
			break
		}
	}
	// Drain any acks that raced the kill so the pipe closes, then reap.
	for sc.Scan() {
		if n, perr := strconv.Atoi(strings.TrimPrefix(sc.Text(), "acked ")); perr == nil {
			lastAcked = n
		}
	}
	cmd.Wait() // exit status is meaningless after a kill
	return lastAcked, nil
}

// verify reopens the directory and checks durability, prefix
// consistency, and nine-strategy equivalence against an in-RAM oracle.
func verify(dir string, lastAcked, facts int, memtable int64) error {
	e, err := sepdl.Open(dir, storeOpts(memtable)...)
	if err != nil {
		return fmt.Errorf("reopen: %w", err)
	}
	defer e.Close()

	recovered := e.NumFacts() - 6
	if recovered < 0 {
		return fmt.Errorf("base facts missing: %d facts total", e.NumFacts())
	}
	if recovered <= lastAcked {
		return fmt.Errorf("durability violated: child acked fact %d, recovery has only %d dynamic facts", lastAcked, recovered)
	}
	if recovered > facts {
		return fmt.Errorf("recovered %d dynamic facts, more than the %d ever written", recovered, facts)
	}
	// Prefix consistency: fact i present iff i < recovered.
	for i := 0; i < facts; i += 1 + facts/97 {
		pred, c, g := factArgs(i)
		res, err := e.Query(fmt.Sprintf("%s(%s, %s)?", pred, c, g))
		if err != nil {
			return fmt.Errorf("fact %d lookup: %w", i, err)
		}
		if want := i < recovered; res.True() != want {
			return fmt.Errorf("prefix violated: fact %d present=%v, want %v (recovered=%d)", i, res.True(), want, recovered)
		}
	}

	oracle := sepdl.New()
	if err := oracle.LoadProgram(program); err != nil {
		return err
	}
	if err := oracle.LoadFacts(baseFacts); err != nil {
		return err
	}
	for i := 0; i < recovered; i++ {
		pred, c, g := factArgs(i)
		if err := oracle.AddFact(pred, c, g); err != nil {
			return err
		}
	}
	queries := []string{"buys(a, Y)?", "buys(d, Y)?", "buys(X, g1)?", "buys(z, Y)?"}
	for _, q := range queries {
		for _, s := range strategies {
			r1, err1 := e.Query(q, sepdl.WithStrategy(s))
			r2, err2 := oracle.Query(q, sepdl.WithStrategy(s))
			if (err1 == nil) != (err2 == nil) {
				return fmt.Errorf("%s [%s]: recovered err=%v, oracle err=%v", q, s, err1, err2)
			}
			if err1 == nil && r1.String() != r2.String() {
				return fmt.Errorf("%s [%s]: recovered %s, oracle %s", q, s, r1, r2)
			}
		}
	}
	return nil
}
