// Seeded violations for the golden-output test: one finding for each of
// the unscoped analyzers (budgetcheck, walorder, snapshotcheck), in a
// stable order. Parse-only; the referenced types stay undefined.
package golden

func fixpointNoHook(rel Rel) {
	for {
		if !rel.Insert(1) {
			break
		}
	}
}

func applyBeforeAppend(db DB, store Store, a Atom) error {
	db.AddAtom(a)
	return store.AppendFact(a)
}

func mutateSnapshot(db DB, t Tuple) {
	db.Snapshot().Insert(t)
}
