// A violation-free package for the exit-code test.
package clean

func add(a, b int) int {
	return a + b
}
