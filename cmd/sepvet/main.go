// Command sepvet runs the repo's static-analysis suite (internal/lint)
// over the module: six std-lib analyzers enforcing the engine's runtime
// invariants — budgetcheck (materializing loops consult the evaluation
// budget), walorder (durable writes append+fsync before applying),
// segorder (segment writers publish via tmp→fsync→rename→dir-fsync),
// snapshotcheck (published snapshots are immutable), errcodecheck
// (errors cross the HTTP/exit boundary through internal/errcode), and
// leakreg (long-lived OS handles register with internal/leakcheck) —
// plus the driver's own directive checks (stale or
// unjustified sepvet:ignore comments are findings too).
//
// Usage:
//
//	sepvet [-json] [-skip dir,dir] [-analyzers a,b] [dir ...]
//
// With no directories, sepvet walks the module from the current
// directory: every package holding non-test Go files is analyzed except
// testdata, hidden directories, and -skip entries — opting a package out
// of analysis is an explicit, reviewable act, not a missing list entry.
//
// Exit status follows the sepdl check convention: 0 clean, 1 findings,
// 2 usage or I/O errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"sepdl/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus the process plumbing, so tests can pin the output
// and exit codes. It returns the exit status.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sepvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut   = fs.Bool("json", false, "emit findings as JSON")
		skip      = fs.String("skip", "", "comma-separated module-relative directories to exclude from the walk")
		analyzers = fs.String("analyzers", "", "comma-separated analyzer names to run (default: all)")
	)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: sepvet [-json] [-skip dir,dir] [-analyzers a,b] [dir ...]")
		fs.PrintDefaults()
		fmt.Fprintln(stderr, "analyzers:")
		for _, a := range lint.All() {
			fmt.Fprintf(stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	opts := lint.Options{}
	if *skip != "" {
		opts.Skip = strings.Split(*skip, ",")
	}
	if *analyzers != "" {
		all := make(map[string]*lint.Analyzer)
		for _, a := range lint.All() {
			all[a.Name] = a
		}
		for _, name := range strings.Split(*analyzers, ",") {
			a, ok := all[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "sepvet: unknown analyzer %q\n", name)
				return 2
			}
			opts.Analyzers = append(opts.Analyzers, a)
		}
		// A partial suite cannot judge directives aimed at the analyzers
		// that did not run.
		opts.NoDirectiveChecks = true
	}
	if fs.NArg() > 0 {
		opts.Dirs = fs.Args()
	}

	findings, err := lint.Check(".", opts)
	if err != nil {
		fmt.Fprintln(stderr, "sepvet:", err)
		return 2
	}
	if *jsonOut {
		if err := writeJSON(stdout, findings); err != nil {
			fmt.Fprintln(stderr, "sepvet:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
		if len(findings) > 0 {
			fmt.Fprintf(stdout, "sepvet: %d finding(s)\n", len(findings))
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// findingJSON is the wire form of one finding; the report is a single
// document so CI can store it as an artifact and tools can parse it
// without line-splitting.
type findingJSON struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Msg      string `json:"msg"`
}

type reportJSON struct {
	Findings []findingJSON `json:"findings"`
	Count    int           `json:"count"`
}

func writeJSON(w io.Writer, findings []lint.Finding) error {
	report := reportJSON{Findings: make([]findingJSON, 0, len(findings)), Count: len(findings)}
	for _, f := range findings {
		report.Findings = append(report.Findings, findingJSON{
			Analyzer: f.Analyzer,
			File:     f.Pos.Filename,
			Line:     f.Pos.Line,
			Col:      f.Pos.Column,
			Msg:      f.Msg,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}
