package main

import (
	"bytes"
	"flag"
	"os"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata/golden.json from current output")

// TestGoldenJSON pins the -json report byte-for-byte against
// testdata/golden.json; regenerate with go test -run TestGoldenJSON -update.
func TestGoldenJSON(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-json", "testdata/golden"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (stderr: %s)", code, errb.String())
	}
	if *update {
		if err := os.WriteFile("testdata/golden.json", out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile("testdata/golden.json")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("JSON report drifted from testdata/golden.json (rerun with -update if intended):\n%s", out.String())
	}
}

func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"clean", []string{"testdata/clean"}, 0},
		{"findings", []string{"testdata/golden"}, 1},
		{"unknown analyzer", []string{"-analyzers", "nope"}, 2},
		{"bad flag", []string{"-definitely-not-a-flag"}, 2},
		{"missing dir", []string{"testdata/no-such-dir"}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			if got := run(tc.args, &out, &errb); got != tc.want {
				t.Errorf("run(%v) = %d, want %d (stderr: %s)", tc.args, got, tc.want, errb.String())
			}
		})
	}
}

func TestTextOutput(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"testdata/golden"}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	text := out.String()
	for _, want := range []string{
		"[budgetcheck]",
		"[walorder]",
		"[snapshotcheck]",
		"sepvet: 3 finding(s)",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("text output missing %q:\n%s", want, text)
		}
	}
}

// TestAnalyzerFilter pins that -analyzers restricts the suite: the golden
// package holds a walorder violation that a budgetcheck-only run must not
// report, and a partial suite must not report stale directives either.
func TestAnalyzerFilter(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-analyzers", "budgetcheck", "testdata/golden"}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if strings.Contains(out.String(), "[walorder]") {
		t.Errorf("budgetcheck-only run reported walorder findings:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "sepvet: 1 finding(s)") {
		t.Errorf("want exactly the budgetcheck finding:\n%s", out.String())
	}
}
