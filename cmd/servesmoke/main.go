// Command servesmoke is the end-to-end smoke test behind make serve-smoke:
// it boots a real sepdld process on a loopback port, answers a query and a
// prepared batch over HTTP, then SIGTERMs the server mid-load and asserts
// a clean drain — exit 0, the drain report on stdout, in-flight requests
// answered, new ones shed with 503 + Retry-After.
//
// Usage:
//
//	servesmoke              # builds sepdld from ./cmd/sepdld first
//	servesmoke -bin ./sepdld
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

const chain = 50

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("servesmoke", flag.ContinueOnError)
	fs.SetOutput(stderr)
	bin := fs.String("bin", "", "sepdld binary to exercise (default: build ./cmd/sepdld)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := smoke(*bin, stdout); err != nil {
		fmt.Fprintln(stderr, "servesmoke: FAIL:", err)
		return 1
	}
	fmt.Fprintln(stdout, "servesmoke: PASS")
	return 0
}

func smoke(bin string, stdout io.Writer) error {
	dir, err := os.MkdirTemp("", "servesmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	if bin == "" {
		bin = filepath.Join(dir, "sepdld")
		build := exec.Command("go", "build", "-o", bin, "./cmd/sepdld")
		if out, err := build.CombinedOutput(); err != nil {
			return fmt.Errorf("building sepdld: %v\n%s", err, out)
		}
	}

	rules := filepath.Join(dir, "rules.dl")
	facts := filepath.Join(dir, "facts.dl")
	prog := "path(X, Y) :- e(X, W) & path(W, Y).\npath(X, Y) :- e(X, Y).\n"
	var fb strings.Builder
	for i := 0; i < chain; i++ {
		fmt.Fprintf(&fb, "e(v%d, v%d).\n", i, i+1)
	}
	if err := os.WriteFile(rules, []byte(prog), 0o644); err != nil {
		return err
	}
	if err := os.WriteFile(facts, []byte(fb.String()), 0o644); err != nil {
		return err
	}

	// The drain delay keeps the listener answering (503 + Retry-After) for
	// a moment after SIGTERM, so the smoke can assert the shedding path
	// rather than racing the listener close.
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-program", rules, "-facts", facts,
		"-drain-grace", "20s", "-drain-delay", "500ms")
	var serverOut syncBuffer
	cmd.Stdout = &serverOut
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return err
	}
	// If anything below fails, don't leave the server running.
	defer cmd.Process.Kill()

	// The readiness handshake: sepdld prints its bound address after the
	// listener is up, so -addr :0 works without a port race.
	addr, err := waitListenAddr(&serverOut, 30*time.Second)
	if err != nil {
		return err
	}
	base := "http://" + addr
	fmt.Fprintf(stdout, "servesmoke: server up at %s\n", base)

	// One open query.
	body, err := post(base+"/v1/query", `{"query": "path(v0, Y)?"}`)
	if err != nil {
		return fmt.Errorf("query: %w", err)
	}
	if !strings.Contains(body, fmt.Sprintf("%q", fmt.Sprintf("v%d", chain))) {
		return fmt.Errorf("query answer missing chain end: %s", body)
	}

	// One prepared batch: prepare, cut the handle out of the response,
	// execute two parameter sets in one seeded fixpoint.
	body, err = post(base+"/v1/prepare", `{"form": "path(v0, Y)?"}`)
	if err != nil {
		return fmt.Errorf("prepare: %w", err)
	}
	_, rest, ok := strings.Cut(body, `"handle":"`)
	if !ok {
		return fmt.Errorf("prepare response has no handle: %s", body)
	}
	handle, _, _ := strings.Cut(rest, `"`)
	body, err = post(base+"/v1/execute",
		`{"handle": "`+handle+`", "param_sets": [["v0"], ["v25"]]}`)
	if err != nil {
		return fmt.Errorf("execute: %w", err)
	}
	if !strings.Contains(body, `"results"`) {
		return fmt.Errorf("execute response has no results: %s", body)
	}
	fmt.Fprintln(stdout, "servesmoke: query and prepared batch answered")

	// Background load, then SIGTERM mid-flight. After the drain flips,
	// every response must be a clean outcome: 200 (admitted before the
	// signal), 503 with Retry-After (shed while draining), or a connection
	// error (listener already closed). Anything else fails the smoke.
	var ok200, shed503, connErr, other atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(base+"/v1/query", "application/json",
					strings.NewReader(`{"query": "path(v0, Y)?"}`))
				if err != nil {
					connErr.Add(1)
					time.Sleep(5 * time.Millisecond)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusOK:
					ok200.Add(1)
				case resp.StatusCode == http.StatusServiceUnavailable && resp.Header.Get("Retry-After") != "":
					shed503.Add(1)
				default:
					other.Add(1)
				}
			}
		}()
	}
	// Let the load get going before signalling.
	deadline := time.Now().Add(10 * time.Second)
	for ok200.Load() < 5 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("SIGTERM: %w", err)
	}

	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			return fmt.Errorf("server exit: %w", err)
		}
	case <-time.After(30 * time.Second):
		return fmt.Errorf("server did not exit within 30s of SIGTERM")
	}
	close(stop)
	wg.Wait()

	fmt.Fprintf(stdout, "servesmoke: under SIGTERM: %d ok, %d shed (503+Retry-After), %d conn-closed, %d other\n",
		ok200.Load(), shed503.Load(), connErr.Load(), other.Load())
	if other.Load() > 0 {
		return fmt.Errorf("%d responses were neither 200, 503+Retry-After, nor connection errors", other.Load())
	}
	if ok200.Load() == 0 {
		return fmt.Errorf("no successful requests before the drain")
	}
	if shed503.Load() == 0 {
		return fmt.Errorf("no request was shed with 503 + Retry-After during the drain window")
	}
	if !strings.Contains(serverOut.String(), "sepdld: drained; exiting") {
		return fmt.Errorf("no drain report in server output:\n%s", serverOut.String())
	}
	return nil
}

// waitListenAddr polls the server's collected stdout for the readiness
// line and returns the bound address.
func waitListenAddr(out *syncBuffer, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	for {
		sc := bufio.NewScanner(strings.NewReader(out.String()))
		for sc.Scan() {
			if rest, ok := strings.CutPrefix(sc.Text(), "sepdld: listening on "); ok {
				addr, _, _ := strings.Cut(rest, " ")
				return addr, nil
			}
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("server never reported its address; output:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// post sends one JSON body and returns the response body, failing on any
// non-200 status.
func post(url, body string) (string, error) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("status %d: %s", resp.StatusCode, b)
	}
	return string(b), nil
}

// syncBuffer is a mutex-guarded byte buffer: the scanner goroutine tees
// into it while the main goroutine reads the accumulated output.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}
