// Command budgetcheck runs the budget-invariant analyzer (internal/lint)
// over the given package directories: every fixpoint loop that
// materializes tuples must consult the evaluation budget. With no
// arguments it checks the evaluation and strategy packages.
//
// Usage:
//
//	budgetcheck [dir ...]
//
// Exit status is 1 when any violation is found, 2 on usage or I/O errors.
package main

import (
	"fmt"
	"os"

	"sepdl/internal/lint"
)

// defaultDirs are the packages whose loops materialize tuples: the
// bottom-up evaluators, every strategy implementation, and the durable
// store (whose replay loops are evaluation-shaped work over the log).
var defaultDirs = []string{
	"internal/eval",
	"internal/core",
	"internal/counting",
	"internal/hn",
	"internal/tabling",
	"internal/magic",
	"internal/aho",
	"internal/expand",
	"internal/adorn",
	"internal/wal",
}

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = defaultDirs
	}
	bad := false
	for _, dir := range dirs {
		findings, err := lint.CheckDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "budgetcheck:", err)
			os.Exit(2)
		}
		for _, f := range findings {
			fmt.Println(f)
			bad = true
		}
	}
	if bad {
		os.Exit(1)
	}
}
