// Command budgetcheck is a deprecated shim: the budget-invariant
// analyzer now lives in the sepvet suite (cmd/sepvet, internal/lint),
// which walks the whole module and runs four more invariant analyzers
// alongside it. This command survives one release for scripts that call
// it by name; it runs sepvet restricted to the budgetcheck analyzer over
// the given directories (the whole module when none are given) and exits
// with sepvet's codes: 0 clean, 1 findings, 2 usage or I/O errors.
//
// Usage:
//
//	budgetcheck [dir ...]
//
// Migrate to:
//
//	sepvet -analyzers budgetcheck [dir ...]
package main

import (
	"fmt"
	"os"

	"sepdl/internal/lint"
)

func main() {
	fmt.Fprintln(os.Stderr, "budgetcheck: deprecated; use sepvet (cmd/sepvet), which runs this analyzer and four more")
	opts := lint.Options{
		Analyzers: []*lint.Analyzer{lint.Budgetcheck()},
		// A single-analyzer run cannot judge directives aimed at the rest
		// of the suite, so the shim skips the stale-ignore checks.
		NoDirectiveChecks: true,
	}
	if len(os.Args) > 1 {
		opts.Dirs = os.Args[1:]
	}
	findings, err := lint.Check(".", opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "budgetcheck:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		// Exit 1 is the lint "findings" convention shared with sepvet and
		// sepdl check — not an engine error crossing the boundary.
		// sepvet:ignore:errcodecheck — findings exit convention; no engine error to classify
		os.Exit(1)
	}
}
