// Command sepdetect runs the separability test (Definition 2.4) on the
// recursive predicates of a Datalog program and explains the result: the
// equivalence classes and persistent columns when separable, the violated
// condition otherwise.
//
// Usage:
//
//	sepdetect -program rules.dl [pred ...]
//
// Without predicate arguments every IDB predicate is analysed. Exit status
// is 0 if all analysed predicates are separable, 1 otherwise.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"sepdl/internal/core"
	"sepdl/internal/parser"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sepdetect", flag.ContinueOnError)
	fs.SetOutput(stderr)
	programPath := fs.String("program", "", "path to the Datalog rules file (required)")
	relaxed := fs.Bool("relaxed", false, "skip condition 4 (connectivity), per §5")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *programPath == "" {
		fmt.Fprintln(stderr, "sepdetect: -program is required")
		fs.Usage()
		return 2
	}
	src, err := os.ReadFile(*programPath)
	if err != nil {
		fmt.Fprintln(stderr, "sepdetect:", err)
		return 1
	}
	prog, err := parser.Program(string(src))
	if err != nil {
		fmt.Fprintln(stderr, "sepdetect:", err)
		return 1
	}

	preds := fs.Args()
	if len(preds) == 0 {
		for p := range prog.IDBPreds() {
			preds = append(preds, p)
		}
		sort.Strings(preds)
	}

	allSeparable := true
	for _, pred := range preds {
		a, err := core.AnalyzeOpts(prog, pred, core.Options{AllowDisconnected: *relaxed})
		if err != nil {
			fmt.Fprintf(stdout, "%s: NOT separable\n  %v\n", pred, err)
			allSeparable = false
			continue
		}
		fmt.Fprintln(stdout, a)
	}
	if !allSeparable {
		return 1
	}
	return 0
}
