package main

import (
	"bytes"
	"strings"
	"testing"
)

func runDetect(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code := run(args, &out, &errBuf)
	return out.String(), errBuf.String(), code
}

func TestSeparableProgram(t *testing.T) {
	out, _, code := runDetect(t, "-program", "../../testdata/buys.dl")
	if code != 0 {
		t.Fatalf("exit = %d: %s", code, out)
	}
	for _, want := range []string{"separable recursion", "1 equivalence class", "persistent columns: {2}"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestNonSeparableProgram(t *testing.T) {
	out, _, code := runDetect(t, "-program", "../../testdata/nonseparable.dl")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(out, "NOT separable") || !strings.Contains(out, "condition 4") {
		t.Errorf("output missing diagnosis:\n%s", out)
	}
}

func TestRelaxedFlag(t *testing.T) {
	out, _, code := runDetect(t, "-relaxed", "-program", "../../testdata/nonseparable.dl")
	if code != 0 {
		t.Fatalf("exit = %d: %s", code, out)
	}
	if !strings.Contains(out, "separable recursion") {
		t.Errorf("relaxed analysis failed:\n%s", out)
	}
}

func TestExplicitPredicateList(t *testing.T) {
	out, _, code := runDetect(t, "-program", "../../testdata/buys.dl", "buys")
	if code != 0 || !strings.Contains(out, "buys/2") {
		t.Fatalf("exit=%d out=%q", code, out)
	}
}

func TestMissingProgram(t *testing.T) {
	_, errOut, code := runDetect(t)
	if code != 2 || !strings.Contains(errOut, "-program is required") {
		t.Fatalf("exit=%d err=%q", code, errOut)
	}
}

func TestUnreadableFile(t *testing.T) {
	_, errOut, code := runDetect(t, "-program", "nope.dl")
	if code != 1 || !strings.Contains(errOut, "nope.dl") {
		t.Fatalf("exit=%d err=%q", code, errOut)
	}
}
