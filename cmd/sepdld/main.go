// Command sepdld serves a Datalog program over HTTP/JSON: a long-running
// process whose plan and closure caches stay warm across requests, with
// the overload behaviour a shared endpoint needs — admission control
// surfacing as 503 + Retry-After, per-request budgets as 429/408,
// per-client token-bucket quotas, server-side prepared handles with an
// idle reaper, Prometheus /metrics, and graceful drain on SIGTERM
// (finish in-flight, reject new with 503, exit 0).
//
// Usage:
//
//	sepdld -program rules.dl -facts data.dl -addr :8080
//	sepdld -program rules.dl -facts data.dl -concurrency 8 -admit-wait 100ms \
//	       -quota-rps 50 -max-deadline 5s -max-tuples 1000000
//	sepdld -data-dir /var/lib/sepdl -program rules.dl
//
// With -data-dir every accepted write (POST /v1/facts, /v1/load) is
// appended to a write-ahead log and fsynced before it is acknowledged;
// on restart the state is recovered — including after a crash mid-write —
// before the listener binds, so /readyz never reports ready with a
// partial database. -program/-facts only bootstrap an empty data dir;
// recovered state wins on later restarts.
//
// Endpoints: POST /v1/{query,batch,prepare,execute,close,facts,load};
// GET /healthz, /readyz, /metrics. See internal/server for wire formats.
//
// On SIGTERM or SIGINT the server drains: /readyz flips to 503 so load
// balancers stop routing here, new /v1 requests are rejected with 503 +
// Retry-After, queries already admitted run to completion, and the
// process exits 0 once idle (or once -drain-grace expires).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sepdl"
	"sepdl/internal/leakcheck"
	"sepdl/internal/server"
)

func main() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, sig))
}

// run is main minus the process plumbing, so tests can drive a full
// serve-drain-exit cycle in-process. It returns the exit code; sig
// delivers the shutdown signal.
func run(args []string, stdout, stderr io.Writer, sig <-chan os.Signal) int {
	fs := flag.NewFlagSet("sepdld", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", ":8080", "listen address")
		programPath = fs.String("program", "", "path to the Datalog rules file (required unless -data-dir has state)")
		factsPath   = fs.String("facts", "", "comma-separated paths to ground-facts files")

		dataDir    = fs.String("data-dir", "", "durable data directory (write-ahead log); empty = in-RAM only")
		ckptBytes  = fs.Int64("checkpoint-bytes", 0, "log growth that triggers a checkpoint; 0 = default, negative disables")
		noSync     = fs.Bool("no-sync", false, "skip fsync per write; durability only at checkpoints and shutdown")
		memBytes   = fs.Int64("memtable-bytes", 0, "in-RAM overlay budget before facts flush to sorted segment files; 0 disables the trigger")
		cacheBytes = fs.Int64("block-cache-bytes", 0, "segment block-cache budget; 0 = default (32 MiB), negative disables retention")

		concurrency = fs.Int("concurrency", 0, "max queries evaluated at once; 0 unlimited")
		admitWait   = fs.Duration("admit-wait", 100*time.Millisecond, "how long an over-limit query queues before 503")
		parallelism = fs.Int("parallelism", 0, "worker goroutines inside one evaluation; 0 = GOMAXPROCS")
		strict      = fs.Bool("strict", false, "reject the program unless the full static-analysis pass is clean")

		defaultDeadline = fs.Duration("default-deadline", 0, "deadline for requests that set none; 0 = unlimited")
		maxDeadline     = fs.Duration("max-deadline", 0, "cap on per-request deadlines; 0 = uncapped")
		maxTuples       = fs.Int("max-tuples", 0, "cap on per-request derived-tuple budgets; 0 = uncapped")
		maxRounds       = fs.Int("max-rounds", 0, "cap on per-request fixpoint-round budgets; 0 = uncapped")
		maxBytes        = fs.Int64("max-bytes", 0, "cap on per-request derived-bytes budgets; 0 = uncapped")

		quotaRPS   = fs.Float64("quota-rps", 0, "per-client requests/second (X-Sepdl-Client or remote IP); 0 disables quotas")
		quotaBurst = fs.Int("quota-burst", 0, "per-client burst allowance; 0 = 2x quota-rps")

		preparedTTL = fs.Duration("prepared-ttl", 5*time.Minute, "idle lifetime of a prepared handle before the reaper closes it")
		maxPrepared = fs.Int("max-prepared", 1024, "cap on live prepared handles")

		maxBody      = fs.Int64("max-body", 1<<20, "cap on request body bytes")
		retryAfter   = fs.Duration("retry-after", time.Second, "backoff hint on 503 responses")
		readTimeout  = fs.Duration("read-timeout", 30*time.Second, "HTTP read timeout (slowloris cutoff)")
		writeTimeout = fs.Duration("write-timeout", 60*time.Second, "HTTP write timeout (stalled-reader cutoff)")
		drainGrace   = fs.Duration("drain-grace", 30*time.Second, "how long shutdown waits for in-flight requests")
		drainDelay   = fs.Duration("drain-delay", 0, "how long to keep answering (with 503s for new work) after the drain starts, so load balancers see /readyz flip before the listener closes")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *programPath == "" && *dataDir == "" {
		fmt.Fprintln(stderr, "sepdld: -program is required")
		fs.Usage()
		return 2
	}

	opts := []sepdl.EngineOption{
		sepdl.WithMaxConcurrent(*concurrency),
		sepdl.WithAdmissionWait(*admitWait),
		sepdl.WithParallelism(*parallelism),
	}
	if *strict {
		opts = append(opts, sepdl.WithStrictChecks())
	}
	var eng *sepdl.Engine
	if *dataDir != "" {
		// Open recovers the persisted state (replaying the log, truncating
		// any crash-torn tail) before returning, so by the time the
		// listener binds and /readyz answers, the database is complete.
		opts = append(opts, sepdl.WithCheckpointBytes(*ckptBytes), sepdl.WithSyncWrites(!*noSync),
			sepdl.WithMemtableBytes(*memBytes), sepdl.WithBlockCacheBytes(*cacheBytes))
		var err error
		if eng, err = sepdl.Open(*dataDir, opts...); err != nil {
			fmt.Fprintln(stderr, "sepdld:", err)
			return 1
		}
		defer eng.Close()
		if w := eng.Stats().WAL; w.RecoveredRecords > 0 || w.RecoveryTruncations > 0 {
			fmt.Fprintf(stdout, "sepdld: recovered %d log records (%d bytes, %d torn tails truncated) in %s\n",
				w.RecoveredRecords, w.RecoveredBytes, w.RecoveryTruncations,
				time.Duration(w.RecoveryNanos))
		}
	} else {
		eng = sepdl.New(opts...)
	}
	// -program/-facts bootstrap an empty engine; a durable engine that
	// already recovered state keeps it and ignores the bootstrap files, so
	// restarting with the same flags never double-loads the rules.
	if eng.ProgramText() == "" && eng.NumFacts() == 0 {
		if *programPath != "" {
			src, err := os.ReadFile(*programPath)
			if err != nil {
				fmt.Fprintln(stderr, "sepdld:", err)
				return 1
			}
			if err := eng.LoadProgram(string(src)); err != nil {
				fmt.Fprintln(stderr, "sepdld:", err)
				return 1
			}
		}
		if *factsPath != "" {
			for _, p := range strings.Split(*factsPath, ",") {
				data, err := os.ReadFile(strings.TrimSpace(p))
				if err != nil {
					fmt.Fprintln(stderr, "sepdld:", err)
					return 1
				}
				if err := eng.LoadFacts(string(data)); err != nil {
					fmt.Fprintln(stderr, "sepdld:", err)
					return 1
				}
			}
		}
	}

	srv := server.New(eng, server.Config{
		DefaultDeadline: *defaultDeadline,
		MaxDeadline:     *maxDeadline,
		MaxTuples:       *maxTuples,
		MaxRounds:       *maxRounds,
		MaxBytes:        *maxBytes,
		QuotaRPS:        *quotaRPS,
		QuotaBurst:      *quotaBurst,
		PreparedTTL:     *preparedTTL,
		MaxPrepared:     *maxPrepared,
		MaxBodyBytes:    *maxBody,
		RetryAfter:      *retryAfter,
	})
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "sepdld:", err)
		return 1
	}
	lnTok := leakcheck.OpenResource("listener " + ln.Addr().String())
	defer leakcheck.CloseResource(lnTok)
	hs := &http.Server{
		Handler:      srv,
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
	}

	// The "listening on" line is the readiness handshake for smoke tools:
	// printed only once the listener is bound, with the resolved address
	// (so -addr :0 is usable in tests).
	fmt.Fprintf(stdout, "sepdld: listening on %s (%d facts loaded)\n",
		ln.Addr().String(), eng.NumFacts())

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		// Serve never returns nil; anything here means the listener died.
		fmt.Fprintln(stderr, "sepdld:", err)
		return 1
	case s := <-sig:
		fmt.Fprintf(stdout, "sepdld: received %v; draining (grace %s)\n", s, *drainGrace)
	}

	// Drain: stop admitting (engine + /readyz flip atomically via the
	// engine's drain flag), optionally keep the listener up while load
	// balancers notice the flip — requests arriving in that window get the
	// typed 503 + Retry-After, not a connection error — then give in-flight
	// requests the grace period to finish before the HTTP server is torn
	// down.
	srv.StartDrain()
	if *drainDelay > 0 {
		time.Sleep(*drainDelay)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		// Grace expired with requests still running: report it and exit
		// nonzero so orchestrators can see the hard cutoff.
		fmt.Fprintln(stderr, "sepdld: drain grace expired:", err)
		hs.Close()
		return 1
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(stderr, "sepdld:", err)
		return 1
	}
	fmt.Fprintln(stdout, "sepdld: drained; exiting")
	return 0
}
