package main

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// writeFixture writes the path/edge program and a small chain.
func writeFixture(t *testing.T) (rules, facts string) {
	t.Helper()
	dir := t.TempDir()
	rules = filepath.Join(dir, "rules.dl")
	facts = filepath.Join(dir, "facts.dl")
	prog := "path(X, Y) :- e(X, W) & path(W, Y).\npath(X, Y) :- e(X, Y).\n"
	var b strings.Builder
	for i := 0; i < 10; i++ {
		fmt.Fprintf(&b, "e(v%d, v%d).\n", i, i+1)
	}
	if err := os.WriteFile(rules, []byte(prog), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(facts, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return rules, facts
}

// syncWriter serializes writes so the test can scan partial output while
// run is still writing to it.
type syncWriter struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.String()
}

// listenAddr scans stdout for the readiness line and returns the bound
// address.
func listenAddr(t *testing.T, out *syncWriter) string {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		sc := bufio.NewScanner(strings.NewReader(out.String()))
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "sepdld: listening on "); ok {
				addr, _, _ := strings.Cut(rest, " ")
				return addr
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no listening line in output:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServeQueryDrainExit drives the full lifecycle in-process: boot,
// answer a query and a prepared execute over real HTTP, SIGTERM, drain,
// exit 0.
func TestServeQueryDrainExit(t *testing.T) {
	rules, facts := writeFixture(t)
	var stdout, stderr syncWriter
	sig := make(chan os.Signal, 1)
	exit := make(chan int, 1)
	go func() {
		exit <- run([]string{"-addr", "127.0.0.1:0", "-program", rules, "-facts", facts,
			"-drain-grace", "10s"}, &stdout, &stderr, sig)
	}()
	addr := listenAddr(t, &stdout)
	base := "http://" + addr

	resp, err := http.Post(base+"/v1/query", "application/json",
		strings.NewReader(`{"query": "path(v0, Y)?"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`"v10"`)) {
		t.Fatalf("query: %d %s", resp.StatusCode, body)
	}

	// Prepared round trip.
	resp, err = http.Post(base+"/v1/prepare", "application/json",
		strings.NewReader(`{"form": "path(v0, Y)?"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	_, rest, ok := strings.Cut(string(body), `"handle":"`)
	if !ok {
		t.Fatalf("prepare response: %s", body)
	}
	handle, _, _ := strings.Cut(rest, `"`)
	resp, err = http.Post(base+"/v1/execute", "application/json",
		strings.NewReader(`{"handle": "`+handle+`", "param_sets": [["v0"], ["v5"]]}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`"results"`)) {
		t.Fatalf("execute: %d %s", resp.StatusCode, body)
	}

	// SIGTERM: drain and exit clean.
	sig <- syscall.SIGTERM
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit = %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("server never exited\nstdout:\n%s", stdout.String())
	}
	if !strings.Contains(stdout.String(), "sepdld: drained; exiting") {
		t.Fatalf("no drain report:\n%s", stdout.String())
	}

	// Post-exit the port is closed.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("listener still up after exit")
	}
}

func TestUsageErrors(t *testing.T) {
	var stdout, stderr syncWriter
	sig := make(chan os.Signal)
	if code := run(nil, &stdout, &stderr, sig); code != 2 {
		t.Fatalf("no -program: exit = %d", code)
	}
	if !strings.Contains(stderr.String(), "-program is required") {
		t.Fatalf("stderr: %s", stderr.String())
	}
	if code := run([]string{"-program", "no-such-file.dl"}, &stdout, &stderr, sig); code != 1 {
		t.Fatalf("missing file: exit = %d", code)
	}
}

func TestStrictFlagRejectsDirtyProgram(t *testing.T) {
	dir := t.TempDir()
	rules := filepath.Join(dir, "rules.dl")
	// Singleton variable: a warning the strict pass rejects.
	if err := os.WriteFile(rules, []byte("q(X) :- e(X, Unused).\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr syncWriter
	if code := run([]string{"-program", rules, "-strict"}, &stdout, &stderr, make(chan os.Signal)); code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr: %s", code, stderr.String())
	}
}
