package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sepdl/internal/bench"
)

// TestServeBenchSmoke runs a miniature serve benchmark end to end: all
// three regimes over real HTTP, every request eventually answered, and a
// well-formed JSON artifact.
func TestServeBenchSmoke(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "serve.json")
	out, errOut, code := runBench(t, "-serve-bench",
		"-size", "60", "-seeds", "3", "-requests", "24", "-clients", "3",
		"-json", jsonPath)
	if code != 0 {
		t.Fatalf("exit = %d\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
	for _, regime := range []string{"cold", "warm", "overloaded"} {
		if !strings.Contains(out, regime) {
			t.Errorf("output missing regime %q:\n%s", regime, out)
		}
	}

	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep bench.ServeReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("artifact not JSON: %v\n%s", err, data)
	}
	if len(rep.Points) != 3 {
		t.Fatalf("got %d points, want 3", len(rep.Points))
	}
	for _, p := range rep.Points {
		if p.Err != "" {
			t.Errorf("regime %s errored: %s", p.Regime, p.Err)
		}
		if p.OK != p.Requests {
			t.Errorf("regime %s: %d/%d requests succeeded", p.Regime, p.OK, p.Requests)
		}
		if p.P50Ns <= 0 || p.P99Ns < p.P50Ns {
			t.Errorf("regime %s: implausible percentiles p50=%d p99=%d", p.Regime, p.P50Ns, p.P99Ns)
		}
	}
}

func TestServeBenchBadFlags(t *testing.T) {
	_, errOut, code := runBench(t, "-serve-bench", "-size", "1")
	if code != 2 || !strings.Contains(errOut, "must be positive") {
		t.Fatalf("exit=%d err=%q", code, errOut)
	}
}
