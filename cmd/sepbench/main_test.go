package main

import (
	"bytes"
	"strings"
	"testing"
)

func runBench(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code := run(args, &out, &errBuf)
	return out.String(), errBuf.String(), code
}

func TestList(t *testing.T) {
	out, _, code := runBench(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, id := range []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9"} {
		if !strings.Contains(out, id+" ") && !strings.Contains(out, id+"\t") && !strings.Contains(out, id+"   ") {
			t.Errorf("listing missing %s:\n%s", id, out)
		}
	}
}

func TestSingleExperimentQuick(t *testing.T) {
	out, _, code := runBench(t, "-quick", "-exp", "e1")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, want := range []string{"== e1", "claim:", "magic", "separable"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	_, errOut, code := runBench(t, "-exp", "e99")
	if code != 2 || !strings.Contains(errOut, "unknown experiment") {
		t.Fatalf("exit=%d err=%q", code, errOut)
	}
}

func TestCSVFormat(t *testing.T) {
	out, _, code := runBench(t, "-quick", "-exp", "e2", "-format", "csv")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.HasPrefix(out, "exp,params,algorithm,") {
		t.Fatalf("missing CSV header:\n%s", out)
	}
	if !strings.Contains(out, "e2,n=6,counting,1,count,63,") {
		t.Fatalf("missing counting row:\n%s", out)
	}
}
