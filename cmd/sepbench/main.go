// Command sepbench regenerates the paper's §4 comparison: for each
// experiment in the per-experiment index of DESIGN.md, it builds the
// paper's database, runs each evaluation algorithm, and prints the sizes of
// the relations constructed (Definition 4.2) alongside wall-clock times.
//
// Usage:
//
//	sepbench                 # all experiments, full sweeps
//	sepbench -exp e2         # one experiment
//	sepbench -quick          # reduced sweeps (the sizes the tests check)
//	sepbench -list           # list experiments and claims
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"

	"sepdl/internal/bench"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sepbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp         = fs.String("exp", "all", "experiment id (e1..e9) or \"all\"")
		quick       = fs.Bool("quick", false, "run reduced parameter sweeps")
		list        = fs.Bool("list", false, "list experiments and exit")
		format      = fs.String("format", "table", "output format: table|csv")
		parBench    = fs.Bool("parallel-bench", false, "run the parallel-vs-sequential regression benchmark instead of the experiments")
		cacheBench  = fs.Bool("cache-bench", false, "run the plan/closure-cache regression benchmark (cold vs warm vs batched) instead of the experiments")
		serveBench  = fs.Bool("serve-bench", false, "run the sepdld serving-layer load benchmark (cold vs warm vs overloaded over HTTP) instead of the experiments")
		walBench    = fs.Bool("wal-bench", false, "run the durability benchmark (in-RAM vs WAL fsync modes, plus recovery cost) instead of the experiments")
		streamBench = fs.Bool("stream-bench", false, "run the streaming-vs-materializing executor benchmark instead of the experiments")
		segBench    = fs.Bool("segment-bench", false, "run the beyond-RAM storage benchmark (in-RAM vs disk-cold vs disk-warm over segment files) instead of the experiments")
		jsonPath    = fs.String("json", "", "with -parallel-bench, -cache-bench, -serve-bench, -wal-bench, -stream-bench, or -segment-bench: also write the report as JSON to this path")
		sizes       = fs.String("sizes", "16,32,48", "with -parallel-bench, -cache-bench, or -stream-bench: comma-separated problem sizes")
		classes     = fs.Int("classes", 4, "with -parallel-bench or -stream-bench: equivalence classes in the separable query family")
		par         = fs.Int("parallelism", 0, "with -parallel-bench: worker count for the parallel runs (0 = GOMAXPROCS)")
		seeds       = fs.Int("seeds", 8, "with -cache-bench or -serve-bench: distinct query constants per point")
		size        = fs.Int("size", 400, "with -serve-bench: chain length of the served database")
		walFacts    = fs.Int("wal-facts", 2000, "with -wal-bench: facts ingested per storage mode")
		memtable    = fs.Int64("memtable-bytes", 8<<10, "with -segment-bench: in-RAM overlay budget that triggers flushes during ingest")
		walCkpt     = fs.Int64("wal-ckpt-bytes", 16<<10, "with -wal-bench: checkpoint threshold for the wal-ckpt mode")
		requests    = fs.Int("requests", 200, "with -serve-bench: requests per regime")
		clients     = fs.Int("clients", 4, "with -serve-bench: concurrent clients in the cold and warm regimes")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *parBench {
		return runParallelBench(*sizes, *classes, *par, *jsonPath, stdout, stderr)
	}
	if *streamBench {
		streamSizes := *sizes
		if streamSizes == "16,32,48" {
			streamSizes = "64,96,128"
		}
		return runStreamBench(streamSizes, *classes, *jsonPath, stdout, stderr)
	}
	if *segBench {
		segSizes := *sizes
		if segSizes == "16,32,48" {
			segSizes = "48,96"
		}
		return runSegmentBench(segSizes, *classes, *memtable, *jsonPath, stdout, stderr)
	}
	if *serveBench {
		return runServeBench(*size, *seeds, *requests, *clients, *jsonPath, stdout, stderr)
	}
	if *walBench {
		return runWALBench(*walFacts, *walCkpt, *jsonPath, stdout, stderr)
	}
	if *cacheBench {
		cacheSizes := *sizes
		if cacheSizes == "16,32,48" {
			cacheSizes = "400,800"
		}
		return runCacheBench(cacheSizes, *seeds, *jsonPath, stdout, stderr)
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Fprintf(stdout, "%-4s %s\n     claim: %s\n", e.ID, e.Title, e.Claim)
		}
		return 0
	}

	var exps []bench.Experiment
	if *exp == "all" {
		exps = bench.All()
	} else {
		e, ok := bench.ByID(*exp)
		if !ok {
			fmt.Fprintf(stderr, "sepbench: unknown experiment %q (try -list)\n", *exp)
			return 2
		}
		exps = []bench.Experiment{e}
	}
	if *format == "csv" {
		var all []bench.Row
		for _, e := range exps {
			all = append(all, e.Run(*quick)...)
		}
		fmt.Fprint(stdout, bench.FormatCSV(all))
		return 0
	}
	for i, e := range exps {
		if i > 0 {
			fmt.Fprintln(stdout)
		}
		fmt.Fprint(stdout, bench.FormatExperiment(e, e.Run(*quick)))
	}
	return 0
}

// parseSizes parses a comma-separated size list.
func parseSizes(sizeList string, stderr io.Writer) ([]int, bool) {
	var sizes []int
	for _, s := range strings.Split(sizeList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 2 {
			fmt.Fprintf(stderr, "sepbench: bad -sizes entry %q\n", s)
			return nil, false
		}
		sizes = append(sizes, n)
	}
	return sizes, true
}

// runCacheBench runs the prepared-query cache harness and renders a table
// (plus optional JSON artifact, the BENCH_plancache.json that make bench
// commits to the repository root). The exit code is 1 when any point's
// cached or batched answers diverge from the uncached baseline, so CI can
// use it as an equivalence smoke test; speedups are reported but never
// fail the run (timing is environment-dependent).
func runCacheBench(sizeList string, seeds int, jsonPath string, stdout, stderr io.Writer) int {
	sizes, ok := parseSizes(sizeList, stderr)
	if !ok {
		return 2
	}
	if seeds < 2 {
		fmt.Fprintf(stderr, "sepbench: -seeds must be at least 2, got %d\n", seeds)
		return 2
	}
	rep := bench.RunCache(sizes, seeds)
	fmt.Fprintf(stdout, "cache benchmark: GOMAXPROCS=%d cpus=%d seeds=%d\n",
		rep.GOMAXPROCS, rep.NumCPU, seeds)
	fmt.Fprintf(stdout, "%-10s %6s %9s %12s %12s %8s %12s %12s %8s\n",
		"family", "n", "answers", "cold", "warm", "warm-x", "uncached", "batch", "batch-x")
	for _, p := range rep.Points {
		if p.Err != "" {
			fmt.Fprintf(stdout, "%-10s %6d  ERROR: %s\n", p.Family, p.Size, p.Err)
			continue
		}
		fmt.Fprintf(stdout, "%-10s %6d %9d %12d %12d %7.2fx %12d %12d %7.2fx\n",
			p.Family, p.Size, p.Answers, p.ColdNs, p.WarmNs, p.WarmSpeedup,
			p.UncachedNs, p.BatchNs, p.BatchSpeedup)
	}
	if jsonPath != "" {
		out, err := rep.JSON()
		if err != nil {
			fmt.Fprintf(stderr, "sepbench: %v\n", err)
			return 1
		}
		if err := os.WriteFile(jsonPath, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "sepbench: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s\n", jsonPath)
	}
	if rep.Failed() {
		fmt.Fprintln(stderr, "sepbench: cached or batched answers diverged from the uncached baseline")
		return 1
	}
	return 0
}

// runServeBench runs the serving-layer load harness and renders a table
// (plus optional JSON artifact, the BENCH_serve.json that make bench
// commits to the repository root). The exit code is 1 when any regime
// errored or lost requests — every request must eventually succeed, shed
// requests by retrying with the server's backoff hint; latency numbers
// are reported but never fail the run.
func runServeBench(size, seeds, requests, clients int, jsonPath string, stdout, stderr io.Writer) int {
	if size < 4 || seeds < 1 || requests < 1 || clients < 1 {
		fmt.Fprintln(stderr, "sepbench: -size, -seeds, -requests, and -clients must be positive (size at least 4)")
		return 2
	}
	rep := bench.RunServe(bench.ServeConfig{Size: size, Seeds: seeds, Requests: requests, Clients: clients})
	fmt.Fprintf(stdout, "serve benchmark: GOMAXPROCS=%d cpus=%d size=%d seeds=%d\n",
		rep.GOMAXPROCS, rep.NumCPU, rep.Size, rep.Seeds)
	fmt.Fprintf(stdout, "%-12s %8s %8s %8s %8s %8s %12s %12s\n",
		"regime", "requests", "clients", "ok", "sheds", "retries", "p50", "p99")
	for _, p := range rep.Points {
		if p.Err != "" {
			fmt.Fprintf(stdout, "%-12s %8d  ERROR: %s\n", p.Regime, p.Requests, p.Err)
			continue
		}
		fmt.Fprintf(stdout, "%-12s %8d %8d %8d %8d %8d %12d %12d\n",
			p.Regime, p.Requests, p.Clients, p.OK, p.Sheds, p.Retries, p.P50Ns, p.P99Ns)
	}
	if jsonPath != "" {
		out, err := rep.JSON()
		if err != nil {
			fmt.Fprintf(stderr, "sepbench: %v\n", err)
			return 1
		}
		if err := os.WriteFile(jsonPath, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "sepbench: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s\n", jsonPath)
	}
	if rep.Failed() {
		fmt.Fprintln(stderr, "sepbench: serve benchmark lost requests or errored")
		return 1
	}
	return 0
}

// runWALBench runs the durability harness and renders a table (plus
// optional JSON artifact, the BENCH_wal.json that make bench commits to
// the repository root). The exit code is 1 when any mode errored or a
// recovered store answered the probe query differently from the in-RAM
// baseline; append latencies and recovery times are reported but never
// fail the run (timing is environment-dependent).
func runWALBench(facts int, ckptBytes int64, jsonPath string, stdout, stderr io.Writer) int {
	if facts < 4 || ckptBytes < 1 {
		fmt.Fprintln(stderr, "sepbench: -wal-facts must be at least 4 and -wal-ckpt-bytes positive")
		return 2
	}
	rep := bench.RunWAL(bench.WALConfig{Facts: facts, CheckpointBytes: ckptBytes})
	fmt.Fprintf(stdout, "wal benchmark: GOMAXPROCS=%d cpus=%d facts=%d\n",
		rep.GOMAXPROCS, rep.NumCPU, rep.Facts)
	fmt.Fprintf(stdout, "%-12s %10s %10s %12s %8s %6s %10s %12s %10s\n",
		"mode", "app-p50", "app-p99", "ingest", "syncs", "ckpts", "log-bytes", "recovery", "replayed")
	for _, p := range rep.Points {
		if p.Err != "" {
			fmt.Fprintf(stdout, "%-12s  ERROR: %s\n", p.Mode, p.Err)
			continue
		}
		fmt.Fprintf(stdout, "%-12s %10d %10d %12d %8d %6d %10d %12d %10d\n",
			p.Mode, p.AppendP50Ns, p.AppendP99Ns, p.IngestNs, p.Syncs, p.Checkpoints,
			p.LogBytes, p.RecoveryNs, p.RecoveredRecords)
	}
	if jsonPath != "" {
		out, err := rep.JSON()
		if err != nil {
			fmt.Fprintf(stderr, "sepbench: %v\n", err)
			return 1
		}
		if err := os.WriteFile(jsonPath, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "sepbench: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s\n", jsonPath)
	}
	if rep.Failed() {
		fmt.Fprintln(stderr, "sepbench: a recovered store diverged from the in-RAM baseline")
		return 1
	}
	return 0
}

// runParallelBench runs the parallel regression harness and renders a
// table (plus optional JSON artifact, the BENCH_parallel.json that make
// bench commits to the repository root).
func runParallelBench(sizeList string, classes, parallelism int, jsonPath string, stdout, stderr io.Writer) int {
	sizes, ok := parseSizes(sizeList, stderr)
	if !ok {
		return 2
	}
	if parallelism < 1 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	rep := bench.RunParallel(sizes, classes, parallelism)
	fmt.Fprintf(stdout, "parallel benchmark: GOMAXPROCS=%d cpus=%d parallelism=%d\n",
		rep.GOMAXPROCS, rep.NumCPU, rep.Parallelism)
	fmt.Fprintf(stdout, "%-10s %6s %9s %12s %12s %12s %8s %9s\n",
		"family", "n", "answers", "seq", "par", "adaptive", "speedup", "adaptive")
	failed := false
	for _, p := range rep.Points {
		if p.Err != "" {
			failed = true
			fmt.Fprintf(stdout, "%-10s %6d  ERROR: %s\n", p.Family, p.Size, p.Err)
			continue
		}
		fmt.Fprintf(stdout, "%-10s %6d %9d %12d %12d %12d %7.2fx %8.2fx\n",
			p.Family, p.Size, p.Answers, p.SeqNs, p.ParNs, p.AdaptiveNs, p.Speedup, p.SpeedupAdaptive)
	}
	if jsonPath != "" {
		out, err := rep.JSON()
		if err != nil {
			fmt.Fprintf(stderr, "sepbench: %v\n", err)
			return 1
		}
		if err := os.WriteFile(jsonPath, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "sepbench: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s\n", jsonPath)
	}
	if failed {
		return 1
	}
	return 0
}

// runStreamBench runs the streaming-vs-materializing harness and renders
// a table (plus optional JSON artifact, the BENCH_stream.json that make
// bench commits to the repository root). Exit status 1 means the two
// modes disagreed on an answer — a correctness failure.
func runStreamBench(sizeList string, classes int, jsonPath string, stdout, stderr io.Writer) int {
	sizes, ok := parseSizes(sizeList, stderr)
	if !ok {
		return 2
	}
	rep := bench.RunStream(sizes, classes)
	fmt.Fprintf(stdout, "stream benchmark: GOMAXPROCS=%d cpus=%d (warm ns, best of %d)\n",
		rep.GOMAXPROCS, rep.NumCPU, 3)
	fmt.Fprintf(stdout, "%-10s %6s %9s %12s %12s %8s %12s %12s %10s\n",
		"family", "n", "answers", "mat", "stream", "speedup", "mat-peakB", "stream-peakB", "peak-red")
	for _, p := range rep.Points {
		if p.Err != "" {
			fmt.Fprintf(stdout, "%-10s %6d  ERROR: %s\n", p.Family, p.Size, p.Err)
			continue
		}
		fmt.Fprintf(stdout, "%-10s %6d %9d %12d %12d %7.2fx %12d %12d %9.0f%%\n",
			p.Family, p.Size, p.Answers, p.MatWarmNs, p.StreamWarmNs, p.Speedup,
			p.MatPeakBytes, p.StreamPeakBytes, 100*p.PeakBytesReduction)
	}
	if jsonPath != "" {
		out, err := rep.JSON()
		if err != nil {
			fmt.Fprintf(stderr, "sepbench: %v\n", err)
			return 1
		}
		if err := os.WriteFile(jsonPath, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "sepbench: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s\n", jsonPath)
	}
	if rep.Failed() {
		return 1
	}
	return 0
}

// runSegmentBench runs the beyond-RAM storage harness and renders a
// table (plus optional JSON artifact, the BENCH_segments.json that make
// bench commits to the repository root). Exit status 1 means a storage
// mode diverged from the in-RAM oracle — a correctness failure; being
// slower than the 2x target is reported but does not fail the run.
func runSegmentBench(sizeList string, classes int, memtable int64, jsonPath string, stdout, stderr io.Writer) int {
	sizes, ok := parseSizes(sizeList, stderr)
	if !ok {
		return 2
	}
	rep := bench.RunSegment(bench.SegmentConfig{Sizes: sizes, Classes: classes, MemtableBytes: memtable})
	fmt.Fprint(stdout, bench.FormatSegment(rep))
	if jsonPath != "" {
		out, err := rep.JSON()
		if err != nil {
			fmt.Fprintf(stderr, "sepbench: %v\n", err)
			return 1
		}
		if err := os.WriteFile(jsonPath, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "sepbench: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s\n", jsonPath)
	}
	if rep.Failed() {
		return 1
	}
	return 0
}
