// Command sepbench regenerates the paper's §4 comparison: for each
// experiment in the per-experiment index of DESIGN.md, it builds the
// paper's database, runs each evaluation algorithm, and prints the sizes of
// the relations constructed (Definition 4.2) alongside wall-clock times.
//
// Usage:
//
//	sepbench                 # all experiments, full sweeps
//	sepbench -exp e2         # one experiment
//	sepbench -quick          # reduced sweeps (the sizes the tests check)
//	sepbench -list           # list experiments and claims
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"sepdl/internal/bench"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sepbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp    = fs.String("exp", "all", "experiment id (e1..e9) or \"all\"")
		quick  = fs.Bool("quick", false, "run reduced parameter sweeps")
		list   = fs.Bool("list", false, "list experiments and exit")
		format = fs.String("format", "table", "output format: table|csv")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Fprintf(stdout, "%-4s %s\n     claim: %s\n", e.ID, e.Title, e.Claim)
		}
		return 0
	}

	var exps []bench.Experiment
	if *exp == "all" {
		exps = bench.All()
	} else {
		e, ok := bench.ByID(*exp)
		if !ok {
			fmt.Fprintf(stderr, "sepbench: unknown experiment %q (try -list)\n", *exp)
			return 2
		}
		exps = []bench.Experiment{e}
	}
	if *format == "csv" {
		var all []bench.Row
		for _, e := range exps {
			all = append(all, e.Run(*quick)...)
		}
		fmt.Fprint(stdout, bench.FormatCSV(all))
		return 0
	}
	for i, e := range exps {
		if i > 0 {
			fmt.Fprintln(stdout)
		}
		fmt.Fprint(stdout, bench.FormatExperiment(e, e.Run(*quick)))
	}
	return 0
}
