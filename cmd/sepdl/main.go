// Command sepdl loads a Datalog program and fact files and evaluates
// queries, choosing the evaluation strategy automatically (the Separable
// algorithm when the recursion passes the Definition 2.4 test) unless one
// is forced with -strategy.
//
// Usage:
//
//	sepdl -program rules.dl -facts data.dl -query 'buys(tom, Y)?' [-strategy separable] [-stats] [-explain]
//	sepdl -program rules.dl -facts data.dl -query '...' -timeout 2s -max-tuples 100000
//	sepdl -program rules.dl -facts data.dl            # REPL on stdin
//
// In the REPL, enter queries like "buys(tom, Y)?"; lines starting with
// ":explain " explain the strategy choice, ":analyze PRED" prints the
// separability analysis, ":compile QUERY" prints the instantiated Figure 2
// schema, ":why FACT" prints a derivation tree for a ground fact, and
// ":quit" exits.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"sepdl"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sepdl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		programPath = fs.String("program", "", "path to the Datalog rules file (required)")
		factsPath   = fs.String("facts", "", "comma-separated paths to ground-facts files")
		query       = fs.String("query", "", "query to evaluate; omit for a REPL")
		strategy    = fs.String("strategy", "auto", "auto|separable|magic|magic-sup|counting|hn|aho|tabling|seminaive|naive")
		showStats   = fs.Bool("stats", false, "print evaluation statistics (relation sizes, iterations, time)")
		explain     = fs.Bool("explain", false, "print the strategy Auto would choose and why")
		relaxed     = fs.Bool("relaxed", false, "allow condition-4-violating recursions in the Separable strategy (§5)")
		dumpPath    = fs.String("dump", "", "write the loaded facts to this file (sorted, parseable) and exit")
		timeout     = fs.Duration("timeout", 0, "wall-clock limit per query (e.g. 2s); 0 means unlimited")
		maxTuples   = fs.Int("max-tuples", 0, "limit on derived tuples per query; 0 means unlimited")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *programPath == "" {
		fmt.Fprintln(stderr, "sepdl: -program is required")
		fs.Usage()
		return 2
	}
	e := sepdl.New()
	src, err := os.ReadFile(*programPath)
	if err != nil {
		fmt.Fprintln(stderr, "sepdl:", err)
		return 1
	}
	if err := e.LoadProgram(string(src)); err != nil {
		fmt.Fprintln(stderr, "sepdl:", err)
		return 1
	}
	if *factsPath != "" {
		for _, p := range strings.Split(*factsPath, ",") {
			data, err := os.ReadFile(strings.TrimSpace(p))
			if err != nil {
				fmt.Fprintln(stderr, "sepdl:", err)
				return 1
			}
			if err := e.LoadFacts(string(data)); err != nil {
				fmt.Fprintln(stderr, "sepdl:", err)
				return 1
			}
		}
	}

	if *dumpPath != "" {
		f, err := os.Create(*dumpPath)
		if err != nil {
			fmt.Fprintln(stderr, "sepdl:", err)
			return 1
		}
		defer f.Close()
		if err := e.WriteFacts(f); err != nil {
			fmt.Fprintln(stderr, "sepdl:", err)
			return 1
		}
		return 0
	}

	limits := queryLimits{timeout: *timeout, maxTuples: *maxTuples}
	if *query != "" {
		if err := runQuery(e, stdout, *query, *strategy, *relaxed, *showStats, *explain, limits); err != nil {
			fmt.Fprintln(stderr, "sepdl:", err)
			return 1
		}
		return 0
	}

	fmt.Fprintf(stdout, "sepdl: %d facts over %d constants loaded; enter queries (\":quit\" to exit)\n",
		e.NumFacts(), e.DistinctConstants())
	sc := bufio.NewScanner(stdin)
	for {
		fmt.Fprint(stdout, "?- ")
		if !sc.Scan() {
			return 0
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == ":quit" || line == ":q":
			return 0
		case strings.HasPrefix(line, ":explain "):
			out, err := e.Explain(strings.TrimPrefix(line, ":explain "))
			if err != nil {
				fmt.Fprintln(stdout, "error:", err)
				continue
			}
			fmt.Fprintln(stdout, out)
		case strings.HasPrefix(line, ":compile "):
			out, err := e.CompilePlan(strings.TrimPrefix(line, ":compile "))
			if err != nil {
				fmt.Fprintln(stdout, "error:", err)
				continue
			}
			fmt.Fprint(stdout, out)
		case strings.HasPrefix(line, ":why "):
			out, err := e.Why(strings.TrimPrefix(line, ":why "))
			if err != nil {
				fmt.Fprintln(stdout, "error:", err)
				continue
			}
			fmt.Fprint(stdout, out)
		case strings.HasPrefix(line, ":analyze "):
			report, _ := e.AnalyzeSeparability(strings.TrimSpace(strings.TrimPrefix(line, ":analyze ")))
			fmt.Fprintln(stdout, report)
		default:
			if err := runQuery(e, stdout, line, *strategy, *relaxed, *showStats, false, limits); err != nil {
				fmt.Fprintln(stdout, "error:", err)
			}
		}
	}
}

// queryLimits are the per-query resource bounds from the command line.
type queryLimits struct {
	timeout   time.Duration
	maxTuples int
}

func runQuery(e *sepdl.Engine, w io.Writer, query, strategy string, relaxed, showStats, explain bool, limits queryLimits) error {
	if explain {
		out, err := e.Explain(query)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, out)
	}
	opts := []sepdl.QueryOption{sepdl.WithStrategy(sepdl.Strategy(strategy))}
	if relaxed {
		opts = append(opts, sepdl.WithRelaxedConnectivity())
	}
	if limits.timeout > 0 {
		opts = append(opts, sepdl.WithDeadline(limits.timeout))
	}
	if limits.maxTuples > 0 {
		opts = append(opts, sepdl.WithBudget(sepdl.Budget{MaxTuples: limits.maxTuples}))
	}
	res, err := e.Query(query, opts...)
	if err != nil {
		return err
	}
	if len(res.Columns) == 0 {
		if res.True() {
			fmt.Fprintln(w, "true")
		} else {
			fmt.Fprintln(w, "false")
		}
	} else {
		fmt.Fprintf(w, "%% %s\n", strings.Join(res.Columns, ", "))
		for _, row := range res.Rows() {
			fmt.Fprintln(w, strings.Join(row, ", "))
		}
		fmt.Fprintf(w, "%% %d answer(s)\n", res.Len())
	}
	if showStats {
		st := res.Stats
		fmt.Fprintf(w, "%% strategy=%s time=%s iterations=%d inserted=%d max=%s(%d)\n",
			st.Strategy, st.Duration, st.Iterations, st.Inserted, st.MaxRelation, st.MaxRelationSize)
		for name, size := range st.RelationSizes {
			fmt.Fprintf(w, "%%   %s: %d\n", name, size)
		}
	}
	return nil
}
