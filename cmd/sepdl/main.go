// Command sepdl loads a Datalog program and fact files and evaluates
// queries, choosing the evaluation strategy automatically (the Separable
// algorithm when the recursion passes the Definition 2.4 test) unless one
// is forced with -strategy.
//
// Usage:
//
//	sepdl -program rules.dl -facts data.dl -query 'buys(tom, Y)?' [-strategy separable] [-stats] [-explain]
//	sepdl -program rules.dl -facts data.dl -query '...' -timeout 2s -max-tuples 100000 -fallback
//	sepdl -program rules.dl -facts data.dl -query '...' -parallel 8 -concurrency 2 -admit-wait 5s
//	sepdl -program rules.dl -facts data.dl            # REPL on stdin
//	sepdl -data-dir ./data -program rules.dl -query '...'  # durable facts (WAL)
//
// -concurrency bounds how many queries evaluate at once (0 = unlimited;
// negative admits none, a drain mode). -parallel fires the same -query N
// times concurrently, exercising snapshot isolation and admission
// control. -fallback retries a budget-aborted compiled strategy under
// semi-naive.
//
// Exit codes follow the shared taxonomy in internal/errcode (sepdld maps
// the same classes to HTTP statuses): 0 success, 1 load/parse/check
// failure, 2 usage, 3 overloaded or draining (query never evaluated),
// 4 deadline exceeded, 5 resource budget exhausted, 6 internal error.
//
// In the REPL, enter queries like "buys(tom, Y)?"; lines starting with
// ":explain " explain the strategy choice, ":analyze PRED" prints the
// separability analysis, ":compile QUERY" prints the instantiated Figure 2
// schema, ":why FACT" prints a derivation tree for a ground fact, and
// ":quit" exits.
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"

	"sepdl"
	"sepdl/internal/errcode"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	if len(args) > 0 && args[0] == "check" {
		return runCheck(args[1:], stdout, stderr)
	}
	fs := flag.NewFlagSet("sepdl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		programPath = fs.String("program", "", "path to the Datalog rules file (required unless -data-dir has state)")
		factsPath   = fs.String("facts", "", "comma-separated paths to ground-facts files")
		dataDir     = fs.String("data-dir", "", "durable data directory (write-ahead log); empty = in-RAM only")
		memBytes    = fs.Int64("memtable-bytes", 0, "in-RAM overlay budget before facts flush to sorted segment files; 0 disables the trigger")
		cacheBytes  = fs.Int64("block-cache-bytes", 0, "segment block-cache budget; 0 = default (32 MiB), negative disables retention")
		query       = fs.String("query", "", "query to evaluate; omit for a REPL")
		strategy    = fs.String("strategy", "auto", "auto|separable|magic|magic-sup|counting|hn|aho|tabling|seminaive|naive")
		showStats   = fs.Bool("stats", false, "print evaluation statistics (relation sizes, iterations, time)")
		explain     = fs.Bool("explain", false, "print the strategy Auto would choose and why")
		relaxed     = fs.Bool("relaxed", false, "allow condition-4-violating recursions in the Separable strategy (§5)")
		dumpPath    = fs.String("dump", "", "write the loaded facts to this file (sorted, parseable) and exit")
		timeout     = fs.Duration("timeout", 0, "wall-clock limit per query (e.g. 2s); 0 means unlimited")
		maxTuples   = fs.Int("max-tuples", 0, "limit on derived tuples per query; 0 means unlimited")
		concurrency = fs.Int("concurrency", 0, "max queries evaluated at once; 0 unlimited, negative admits none (drain)")
		admitWait   = fs.Duration("admit-wait", 0, "how long an over-limit query queues for a slot before failing overloaded")
		parallel    = fs.Int("parallel", 1, "fire the -query this many times concurrently")
		parallelism = fs.Int("parallelism", 0, "worker goroutines inside one evaluation; 0 = GOMAXPROCS, 1 = sequential")
		fallback    = fs.Bool("fallback", false, "retry a budget-aborted compiled strategy under semi-naive")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *programPath == "" && *dataDir == "" {
		fmt.Fprintln(stderr, "sepdl: -program is required")
		fs.Usage()
		return 2
	}
	engOpts := []sepdl.EngineOption{
		sepdl.WithMaxConcurrent(*concurrency),
		sepdl.WithAdmissionWait(*admitWait),
		sepdl.WithParallelism(*parallelism),
	}
	var e *sepdl.Engine
	if *dataDir != "" {
		// Recover the durable state first; -program/-facts then only
		// bootstrap an empty directory, so re-running with the same flags
		// never double-loads the rules into a recovered database.
		engOpts = append(engOpts,
			sepdl.WithMemtableBytes(*memBytes), sepdl.WithBlockCacheBytes(*cacheBytes))
		var err error
		if e, err = sepdl.Open(*dataDir, engOpts...); err != nil {
			fmt.Fprintln(stderr, "sepdl:", err)
			return 1
		}
		defer e.Close()
	} else {
		e = sepdl.New(engOpts...)
	}
	if e.ProgramText() == "" && e.NumFacts() == 0 {
		if *programPath != "" {
			src, err := os.ReadFile(*programPath)
			if err != nil {
				fmt.Fprintln(stderr, "sepdl:", err)
				return 1
			}
			if err := e.LoadProgram(string(src)); err != nil {
				fmt.Fprintln(stderr, "sepdl:", err)
				return 1
			}
		}
		if *factsPath != "" {
			for _, p := range strings.Split(*factsPath, ",") {
				data, err := os.ReadFile(strings.TrimSpace(p))
				if err != nil {
					fmt.Fprintln(stderr, "sepdl:", err)
					return 1
				}
				if err := e.LoadFacts(string(data)); err != nil {
					fmt.Fprintln(stderr, "sepdl:", err)
					return 1
				}
			}
		}
	}

	if *dumpPath != "" {
		f, err := os.Create(*dumpPath)
		if err != nil {
			fmt.Fprintln(stderr, "sepdl:", err)
			return 1
		}
		defer f.Close()
		if err := e.WriteFacts(f); err != nil {
			fmt.Fprintln(stderr, "sepdl:", err)
			return 1
		}
		return 0
	}

	limits := queryLimits{timeout: *timeout, maxTuples: *maxTuples, fallback: *fallback}
	if *query != "" {
		if *parallel > 1 {
			return runParallel(e, stdout, stderr, *query, *strategy, *relaxed, *showStats, *parallel, limits)
		}
		if err := runQuery(e, stdout, *query, *strategy, *relaxed, *showStats, *explain, limits); err != nil {
			return reportQueryError(stderr, err)
		}
		return 0
	}

	fmt.Fprintf(stdout, "sepdl: %d facts over %d constants loaded; enter queries (\":quit\" to exit)\n",
		e.NumFacts(), e.DistinctConstants())
	sc := bufio.NewScanner(stdin)
	for {
		fmt.Fprint(stdout, "?- ")
		if !sc.Scan() {
			return 0
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == ":quit" || line == ":q":
			return 0
		case strings.HasPrefix(line, ":explain "):
			out, err := e.Explain(strings.TrimPrefix(line, ":explain "))
			if err != nil {
				fmt.Fprintln(stdout, "error:", err)
				continue
			}
			fmt.Fprintln(stdout, out)
		case strings.HasPrefix(line, ":compile "):
			out, err := e.CompilePlan(strings.TrimPrefix(line, ":compile "))
			if err != nil {
				fmt.Fprintln(stdout, "error:", err)
				continue
			}
			fmt.Fprint(stdout, out)
		case strings.HasPrefix(line, ":why "):
			out, err := e.Why(strings.TrimPrefix(line, ":why "))
			if err != nil {
				fmt.Fprintln(stdout, "error:", err)
				continue
			}
			fmt.Fprint(stdout, out)
		case strings.HasPrefix(line, ":analyze "):
			report, _ := e.AnalyzeSeparability(strings.TrimSpace(strings.TrimPrefix(line, ":analyze ")))
			fmt.Fprintln(stdout, report)
		default:
			if err := runQuery(e, stdout, line, *strategy, *relaxed, *showStats, false, limits); err != nil {
				fmt.Fprintln(stdout, "error:", err)
			}
		}
	}
}

// queryLimits are the per-query resource bounds from the command line.
type queryLimits struct {
	timeout   time.Duration
	maxTuples int
	fallback  bool
}

// reportQueryError prints a query failure and maps it to an exit code
// via the shared internal/errcode taxonomy — the same classes sepdld maps
// to HTTP statuses, so scripts and load balancers agree on what happened:
// 3 overloaded/draining (never evaluated; retry elsewhere), 4 deadline,
// 5 resource budget (tuples/rounds/bytes), 6 internal, 1 everything else.
func reportQueryError(stderr io.Writer, err error) int {
	class := errcode.Classify(err)
	switch class {
	case errcode.Overload, errcode.Drain:
		fmt.Fprintln(stderr, "sepdl: overloaded:", err)
	default:
		fmt.Fprintln(stderr, "sepdl:", err)
	}
	return class.ExitCode()
}

// runParallel fires the same query n times concurrently. Each worker
// renders into a private buffer; outputs are printed in worker order once
// all complete, so concurrent runs stay readable. The exit code is 0 only
// if every run succeeded; an overload rejection wins over other failures
// so scripts can distinguish load shedding from bad queries.
func runParallel(e *sepdl.Engine, stdout, stderr io.Writer, query, strategy string, relaxed, showStats bool, n int, limits queryLimits) int {
	outs := make([]bytes.Buffer, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = runQuery(e, &outs[i], query, strategy, relaxed, showStats, false, limits)
		}()
	}
	wg.Wait()
	code := 0
	for i := 0; i < n; i++ {
		fmt.Fprintf(stdout, "%% run %d/%d\n", i+1, n)
		if errs[i] != nil {
			if c := reportQueryError(stderr, errs[i]); c == 3 || code == 0 {
				code = c
			}
			continue
		}
		if _, err := io.Copy(stdout, &outs[i]); err != nil {
			fmt.Fprintln(stderr, "sepdl:", err)
			code = 1
		}
	}
	return code
}

func runQuery(e *sepdl.Engine, w io.Writer, query, strategy string, relaxed, showStats, explain bool, limits queryLimits) error {
	if explain {
		out, err := e.Explain(query)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, out)
	}
	opts := []sepdl.QueryOption{sepdl.WithStrategy(sepdl.Strategy(strategy))}
	if relaxed {
		opts = append(opts, sepdl.WithRelaxedConnectivity())
	}
	if limits.timeout > 0 {
		opts = append(opts, sepdl.WithDeadline(limits.timeout))
	}
	if limits.maxTuples > 0 {
		opts = append(opts, sepdl.WithBudget(sepdl.Budget{MaxTuples: limits.maxTuples}))
	}
	if limits.fallback {
		opts = append(opts, sepdl.WithFallback())
	}
	res, err := e.Query(query, opts...)
	if err != nil {
		return err
	}
	if len(res.Columns) == 0 {
		if res.True() {
			fmt.Fprintln(w, "true")
		} else {
			fmt.Fprintln(w, "false")
		}
	} else {
		fmt.Fprintf(w, "%% %s\n", strings.Join(res.Columns, ", "))
		for _, row := range res.Rows() {
			fmt.Fprintln(w, strings.Join(row, ", "))
		}
		fmt.Fprintf(w, "%% %d answer(s)\n", res.Len())
	}
	if showStats {
		st := res.Stats
		from := ""
		if st.FallbackFrom != "" {
			from = fmt.Sprintf(" fallback-from=%s", st.FallbackFrom)
		}
		plan := "miss"
		if st.PlanCacheHit {
			plan = "hit"
		}
		fmt.Fprintf(w, "%% strategy=%s%s time=%s iterations=%d inserted=%d max=%s(%d)\n",
			st.Strategy, from, st.Duration, st.Iterations, st.Inserted, st.MaxRelation, st.MaxRelationSize)
		fmt.Fprintf(w, "%% plan-cache=%s closure-hits=%d closure-misses=%d batch=%d peak-intermediate=%dB\n",
			plan, st.ClosureCacheHits, st.ClosureCacheMisses, st.BatchSize, st.PeakIntermediateBytes)
		for name, size := range st.RelationSizes {
			fmt.Fprintf(w, "%%   %s: %d\n", name, size)
		}
	}
	return nil
}
