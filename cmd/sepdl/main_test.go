package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

const (
	rulesPath = "../../testdata/buys.dl"
	factsPath = "../../testdata/buys_facts.dl"
)

func runCLI(t *testing.T, stdin string, args ...string) (string, string, int) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code := run(args, strings.NewReader(stdin), &out, &errBuf)
	return out.String(), errBuf.String(), code
}

func TestQueryMode(t *testing.T) {
	out, _, code := runCLI(t, "", "-program", rulesPath, "-facts", factsPath, "-query", "buys(tom, Y)?")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, want := range []string{"radio", "tv", "2 answer(s)"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "car") {
		t.Errorf("answer leaked unreachable tuple:\n%s", out)
	}
}

func TestGroundQueryPrintsTruth(t *testing.T) {
	out, _, code := runCLI(t, "", "-program", rulesPath, "-facts", factsPath, "-query", "buys(tom, radio)?")
	if code != 0 || !strings.Contains(out, "true") {
		t.Fatalf("exit=%d out=%q", code, out)
	}
	out, _, _ = runCLI(t, "", "-program", rulesPath, "-facts", factsPath, "-query", "buys(alice, radio)?")
	if !strings.Contains(out, "false") {
		t.Fatalf("out=%q", out)
	}
}

func TestStatsFlag(t *testing.T) {
	out, _, code := runCLI(t, "", "-program", rulesPath, "-facts", factsPath, "-stats", "-query", "buys(tom, Y)?")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out, "strategy=separable") || !strings.Contains(out, "seen1") {
		t.Errorf("stats missing:\n%s", out)
	}
}

func TestExplainFlag(t *testing.T) {
	out, _, code := runCLI(t, "", "-program", rulesPath, "-facts", factsPath, "-explain", "-query", "buys(tom, Y)?")
	if code != 0 || !strings.Contains(out, "Separable evaluation schema") {
		t.Fatalf("exit=%d out=%q", code, out)
	}
}

func TestForcedStrategy(t *testing.T) {
	out, _, code := runCLI(t, "", "-program", rulesPath, "-facts", factsPath,
		"-strategy", "magic", "-stats", "-query", "buys(tom, Y)?")
	if code != 0 || !strings.Contains(out, "strategy=magic") {
		t.Fatalf("exit=%d out=%q", code, out)
	}
}

func TestREPL(t *testing.T) {
	stdin := `
buys(tom, Y)?
:explain buys(tom, Y)?
:analyze buys
bogus query here
:quit
`
	out, _, code := runCLI(t, stdin, "-program", rulesPath, "-facts", factsPath)
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, want := range []string{"facts over", "radio", "Separable evaluation schema", "equivalence class", "error:"} {
		if !strings.Contains(out, want) {
			t.Errorf("REPL output missing %q:\n%s", want, out)
		}
	}
}

func TestMissingProgramFlag(t *testing.T) {
	_, errOut, code := runCLI(t, "", "-query", "x(Y)?")
	if code != 2 || !strings.Contains(errOut, "-program is required") {
		t.Fatalf("exit=%d err=%q", code, errOut)
	}
}

func TestMissingFile(t *testing.T) {
	_, errOut, code := runCLI(t, "", "-program", "no-such-file.dl", "-query", "x(Y)?")
	if code != 1 || !strings.Contains(errOut, "no-such-file.dl") {
		t.Fatalf("exit=%d err=%q", code, errOut)
	}
}

func TestBadQueryExitCode(t *testing.T) {
	_, errOut, code := runCLI(t, "", "-program", rulesPath, "-query", "buys(tom,")
	if code != 1 || !strings.Contains(errOut, "parse error") {
		t.Fatalf("exit=%d err=%q", code, errOut)
	}
}

func TestREPLCompile(t *testing.T) {
	stdin := ":compile buys(tom, Y)?\n:quit\n"
	out, _, code := runCLI(t, stdin, "-program", rulesPath, "-facts", factsPath)
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, want := range []string{"carry1(tom);", "while carry1 not empty do", "ans(V2) := seen2(V2);"} {
		if !strings.Contains(out, want) {
			t.Errorf("compile output missing %q:\n%s", want, out)
		}
	}
}

func TestDumpFlag(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/dump.dl"
	_, _, code := runCLI(t, "", "-program", rulesPath, "-facts", factsPath, "-dump", path)
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "friend(tom, dick).") {
		t.Fatalf("dump missing fact:\n%s", data)
	}
	// The dump must be reloadable.
	_, _, code = runCLI(t, "", "-program", rulesPath, "-facts", path, "-query", "buys(tom, Y)?")
	if code != 0 {
		t.Fatal("dump not reloadable")
	}
}

func TestREPLWhy(t *testing.T) {
	stdin := ":why buys(tom, radio)\n:quit\n"
	out, _, code := runCLI(t, stdin, "-program", rulesPath, "-facts", factsPath)
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out, "[base fact]") {
		t.Fatalf("why output missing derivation:\n%s", out)
	}
}

func TestMaxTuplesFlag(t *testing.T) {
	_, errOut, code := runCLI(t, "", "-program", rulesPath, "-facts", factsPath,
		"-max-tuples", "1", "-query", "buys(tom, Y)?")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(errOut, "tuples limit 1 exceeded") {
		t.Fatalf("stderr = %q, want tuples budget error", errOut)
	}
	// A generous limit must not get in the way.
	out, _, code := runCLI(t, "", "-program", rulesPath, "-facts", factsPath,
		"-max-tuples", "100000", "-query", "buys(tom, Y)?")
	if code != 0 || !strings.Contains(out, "2 answer(s)") {
		t.Fatalf("exit=%d out=%q", code, out)
	}
}

func TestTimeoutFlag(t *testing.T) {
	// 1ns expires before evaluation starts, so the error is deterministic.
	_, errOut, code := runCLI(t, "", "-program", rulesPath, "-facts", factsPath,
		"-timeout", "1ns", "-query", "buys(tom, Y)?")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(errOut, "deadline") {
		t.Fatalf("stderr = %q, want deadline error", errOut)
	}
}
