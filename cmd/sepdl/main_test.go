package main

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"testing"
)

const (
	rulesPath = "../../testdata/buys.dl"
	factsPath = "../../testdata/buys_facts.dl"
)

func runCLI(t *testing.T, stdin string, args ...string) (string, string, int) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code := run(args, strings.NewReader(stdin), &out, &errBuf)
	return out.String(), errBuf.String(), code
}

func TestQueryMode(t *testing.T) {
	out, _, code := runCLI(t, "", "-program", rulesPath, "-facts", factsPath, "-query", "buys(tom, Y)?")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, want := range []string{"radio", "tv", "2 answer(s)"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "car") {
		t.Errorf("answer leaked unreachable tuple:\n%s", out)
	}
}

func TestGroundQueryPrintsTruth(t *testing.T) {
	out, _, code := runCLI(t, "", "-program", rulesPath, "-facts", factsPath, "-query", "buys(tom, radio)?")
	if code != 0 || !strings.Contains(out, "true") {
		t.Fatalf("exit=%d out=%q", code, out)
	}
	out, _, _ = runCLI(t, "", "-program", rulesPath, "-facts", factsPath, "-query", "buys(alice, radio)?")
	if !strings.Contains(out, "false") {
		t.Fatalf("out=%q", out)
	}
}

func TestStatsFlag(t *testing.T) {
	out, _, code := runCLI(t, "", "-program", rulesPath, "-facts", factsPath, "-stats", "-query", "buys(tom, Y)?")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out, "strategy=separable") || !strings.Contains(out, "seen1") {
		t.Errorf("stats missing:\n%s", out)
	}
	// A one-shot CLI query is always a cold cache and a batch of one.
	if !strings.Contains(out, "plan-cache=miss") || !strings.Contains(out, "batch=1") {
		t.Errorf("stats missing cache counters:\n%s", out)
	}
}

func TestExplainFlag(t *testing.T) {
	out, _, code := runCLI(t, "", "-program", rulesPath, "-facts", factsPath, "-explain", "-query", "buys(tom, Y)?")
	if code != 0 || !strings.Contains(out, "Separable evaluation schema") {
		t.Fatalf("exit=%d out=%q", code, out)
	}
}

func TestForcedStrategy(t *testing.T) {
	out, _, code := runCLI(t, "", "-program", rulesPath, "-facts", factsPath,
		"-strategy", "magic", "-stats", "-query", "buys(tom, Y)?")
	if code != 0 || !strings.Contains(out, "strategy=magic") {
		t.Fatalf("exit=%d out=%q", code, out)
	}
}

func TestREPL(t *testing.T) {
	stdin := `
buys(tom, Y)?
:explain buys(tom, Y)?
:analyze buys
bogus query here
:quit
`
	out, _, code := runCLI(t, stdin, "-program", rulesPath, "-facts", factsPath)
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, want := range []string{"facts over", "radio", "Separable evaluation schema", "equivalence class", "error:"} {
		if !strings.Contains(out, want) {
			t.Errorf("REPL output missing %q:\n%s", want, out)
		}
	}
}

func TestMissingProgramFlag(t *testing.T) {
	_, errOut, code := runCLI(t, "", "-query", "x(Y)?")
	if code != 2 || !strings.Contains(errOut, "-program is required") {
		t.Fatalf("exit=%d err=%q", code, errOut)
	}
}

func TestMissingFile(t *testing.T) {
	_, errOut, code := runCLI(t, "", "-program", "no-such-file.dl", "-query", "x(Y)?")
	if code != 1 || !strings.Contains(errOut, "no-such-file.dl") {
		t.Fatalf("exit=%d err=%q", code, errOut)
	}
}

func TestBadQueryExitCode(t *testing.T) {
	_, errOut, code := runCLI(t, "", "-program", rulesPath, "-query", "buys(tom,")
	if code != 1 || !strings.Contains(errOut, "parse error") {
		t.Fatalf("exit=%d err=%q", code, errOut)
	}
}

func TestREPLCompile(t *testing.T) {
	stdin := ":compile buys(tom, Y)?\n:quit\n"
	out, _, code := runCLI(t, stdin, "-program", rulesPath, "-facts", factsPath)
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, want := range []string{"carry1(tom);", "while carry1 not empty do", "ans(V2) := seen2(V2);"} {
		if !strings.Contains(out, want) {
			t.Errorf("compile output missing %q:\n%s", want, out)
		}
	}
}

func TestDumpFlag(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/dump.dl"
	_, _, code := runCLI(t, "", "-program", rulesPath, "-facts", factsPath, "-dump", path)
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "friend(tom, dick).") {
		t.Fatalf("dump missing fact:\n%s", data)
	}
	// The dump must be reloadable.
	_, _, code = runCLI(t, "", "-program", rulesPath, "-facts", path, "-query", "buys(tom, Y)?")
	if code != 0 {
		t.Fatal("dump not reloadable")
	}
}

func TestREPLWhy(t *testing.T) {
	stdin := ":why buys(tom, radio)\n:quit\n"
	out, _, code := runCLI(t, stdin, "-program", rulesPath, "-facts", factsPath)
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out, "[base fact]") {
		t.Fatalf("why output missing derivation:\n%s", out)
	}
}

func TestMaxTuplesFlag(t *testing.T) {
	_, errOut, code := runCLI(t, "", "-program", rulesPath, "-facts", factsPath,
		"-max-tuples", "1", "-query", "buys(tom, Y)?")
	if code != 5 {
		t.Fatalf("exit = %d, want 5 (resource budget)", code)
	}
	if !strings.Contains(errOut, "tuples limit 1 exceeded") {
		t.Fatalf("stderr = %q, want tuples budget error", errOut)
	}
	// A generous limit must not get in the way.
	out, _, code := runCLI(t, "", "-program", rulesPath, "-facts", factsPath,
		"-max-tuples", "100000", "-query", "buys(tom, Y)?")
	if code != 0 || !strings.Contains(out, "2 answer(s)") {
		t.Fatalf("exit=%d out=%q", code, out)
	}
}

func TestTimeoutFlag(t *testing.T) {
	// 1ns expires before evaluation starts, so the error is deterministic.
	_, errOut, code := runCLI(t, "", "-program", rulesPath, "-facts", factsPath,
		"-timeout", "1ns", "-query", "buys(tom, Y)?")
	if code != 4 {
		t.Fatalf("exit = %d, want 4 (deadline)", code)
	}
	if !strings.Contains(errOut, "deadline") {
		t.Fatalf("stderr = %q, want deadline error", errOut)
	}
}

func TestConcurrencyFlagOverloaded(t *testing.T) {
	// A negative limit is drain mode: no query is admitted, which makes the
	// overloaded path deterministic from the CLI.
	_, errOut, code := runCLI(t, "", "-program", rulesPath, "-facts", factsPath,
		"-concurrency", "-1", "-query", "buys(tom, Y)?")
	if code != 3 {
		t.Fatalf("exit = %d, want 3", code)
	}
	if !strings.Contains(errOut, "sepdl: overloaded") {
		t.Fatalf("stderr = %q, want overloaded message", errOut)
	}
}

func TestParallelFlagAllRunsAnswer(t *testing.T) {
	// More workers than admission slots, but a generous admission wait lets
	// everyone queue for a slot, so all runs must still answer.
	out, errOut, code := runCLI(t, "", "-program", rulesPath, "-facts", factsPath,
		"-parallel", "4", "-concurrency", "2", "-admit-wait", "30s", "-query", "buys(tom, Y)?")
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (stderr %q)", code, errOut)
	}
	for i := 1; i <= 4; i++ {
		if !strings.Contains(out, fmt.Sprintf("%% run %d/4", i)) {
			t.Errorf("output missing run %d header:\n%s", i, out)
		}
	}
	if got := strings.Count(out, "2 answer(s)"); got != 4 {
		t.Errorf("answer footers = %d, want 4:\n%s", got, out)
	}
}

func TestParallelFlagOverloadSheds(t *testing.T) {
	// Drain mode with several workers: every run is shed, each reports the
	// overloaded message, and the exit code is the admission-control 3.
	// (A positive limit would shed nondeterministically here — the runs can
	// finish fast enough to never overlap — so the test drains instead.)
	out, errOut, code := runCLI(t, "", "-program", rulesPath, "-facts", factsPath,
		"-parallel", "4", "-concurrency", "-1", "-query", "buys(tom, Y)?")
	if code != 3 {
		t.Fatalf("exit = %d, want 3 (stderr %q)", code, errOut)
	}
	if got := strings.Count(errOut, "sepdl: overloaded"); got != 4 {
		t.Fatalf("overloaded messages = %d, want 4:\n%s", got, errOut)
	}
	// Run headers still appear so the shed runs are attributable.
	if !strings.Contains(out, "% run 4/4") {
		t.Errorf("output missing run headers:\n%s", out)
	}
}

// writeChainFixture writes a 10-node friend chain with the buys program to
// dir. Semi-naive derives exactly 10 tuples answering buys(a0, Y)?; the
// magic rewrite derives 20 (magic@ seeds plus bound answers), so a tuple
// budget of 12 trips magic while semi-naive fits.
func writeChainFixture(t *testing.T, dir string) (rules, facts string) {
	t.Helper()
	rules = dir + "/chain.dl"
	facts = dir + "/chain_facts.dl"
	prog := "buys(X, Y) :- perfectFor(X, Y).\nbuys(X, Y) :- friend(X, W) & buys(W, Y).\n"
	var b strings.Builder
	for i := 0; i < 9; i++ {
		fmt.Fprintf(&b, "friend(a%d, a%d).\n", i, i+1)
	}
	b.WriteString("perfectFor(a9, g).\n")
	if err := os.WriteFile(rules, []byte(prog), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(facts, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return rules, facts
}

func TestFallbackFlagReportsStrategy(t *testing.T) {
	rules, facts := writeChainFixture(t, t.TempDir())
	_, errOut, code := runCLI(t, "", "-program", rules, "-facts", facts,
		"-strategy", "magic", "-max-tuples", "12", "-query", "buys(a0, Y)?")
	if code != 5 || !strings.Contains(errOut, "tuples limit") {
		t.Fatalf("without -fallback: exit=%d stderr=%q, want budget failure", code, errOut)
	}
	out, errOut, code := runCLI(t, "", "-program", rules, "-facts", facts,
		"-strategy", "magic", "-max-tuples", "12", "-fallback", "-stats", "-query", "buys(a0, Y)?")
	if code != 0 {
		t.Fatalf("with -fallback: exit = %d (stderr %q)", code, errOut)
	}
	if !strings.Contains(out, "1 answer(s)") || !strings.Contains(out, "g") {
		t.Errorf("fallback answers missing:\n%s", out)
	}
	if !strings.Contains(out, "strategy=seminaive") || !strings.Contains(out, "fallback-from=magic") {
		t.Errorf("stats missing fallback report:\n%s", out)
	}
}
