package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"sepdl/internal/diag"
)

var update = flag.Bool("update", false, "rewrite the check golden files")

// checkCase is one sepdl check invocation with pinned output and exit
// status. Fixtures live in testdata/check; the meta-test below asserts
// that together they produce every non-internal diagnostic code.
type checkCase struct {
	name     string
	file     string
	query    string
	wantExit int
}

var checkCases = []checkCase{
	{"syntax", "syntax.dl", "", 2},
	{"arity", "arity.dl", "", 2},
	{"builtin_def", "builtin_def.dl", "", 2},
	{"builtin_arity", "builtin_arity.dl", "", 2},
	{"builtin_neg", "builtin_neg.dl", "", 2},
	{"unsafe", "unsafe.dl", "", 2},
	{"unsafe_neg", "unsafe_neg.dl", "", 2},
	{"stratify", "stratify.dl", "", 2},
	{"nonlinear", "nonlinear.dl", "", 1},
	{"mutual", "mutual.dl", "", 1},
	{"negrec", "negrec.dl", "", 1},
	{"headshape", "headshape.dl", "", 1},
	{"shifting", "shifting.dl", "", 1},
	{"boundmismatch", "boundmismatch.dl", "", 1},
	{"classoverlap", "classoverlap.dl", "", 1},
	{"disconnected", "disconnected.dl", "", 1},
	{"deadcode", "deadcode.dl", "t(a, Y)?", 1},
	{"cartesian", "cartesian.dl", "", 1},
	{"singleton", "singleton.dl", "", 1},
	{"noselection", "buys.dl", "buys(X, Y)?", 1},
	{"unknownquery", "buys.dl", "nosuch(a)?", 1},
	{"separable", "buys.dl", "buys(tom, Y)?", 0},
	{"aho", "anc.dl", "anc(adam, Y)?", 0},
}

// runCase invokes the check subcommand on a fixture and returns its stdout
// and exit status.
func runCase(t *testing.T, c checkCase, jsonOut bool) (string, int) {
	t.Helper()
	args := []string{filepath.Join("testdata", "check", c.file)}
	if c.query != "" {
		args = append(args, "-query", c.query)
	}
	if jsonOut {
		args = append(args, "-json")
	}
	var stdout, stderr bytes.Buffer
	code := runCheck(args, &stdout, &stderr)
	if stderr.Len() > 0 {
		t.Fatalf("stderr: %s", stderr.String())
	}
	return stdout.String(), code
}

// compareGolden checks got against the golden file, rewriting it under
// -update.
func compareGolden(t *testing.T, path, got string) {
	t.Helper()
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run go test -update to create goldens)", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n got:\n%s\nwant:\n%s", path, got, want)
	}
}

func TestCheckGoldens(t *testing.T) {
	for _, c := range checkCases {
		t.Run(c.name, func(t *testing.T) {
			text, code := runCase(t, c, false)
			if code != c.wantExit {
				t.Errorf("text exit = %d, want %d", code, c.wantExit)
			}
			compareGolden(t, filepath.Join("testdata", "check", c.name+".golden"), text)

			js, code := runCase(t, c, true)
			if code != c.wantExit {
				t.Errorf("json exit = %d, want %d", code, c.wantExit)
			}
			compareGolden(t, filepath.Join("testdata", "check", c.name+".json.golden"), js)
		})
	}
}

// TestCheckJSONRoundTrips pins that -json output survives
// encoding/json: unmarshal into the report type, re-marshal, and compare.
func TestCheckJSONRoundTrips(t *testing.T) {
	for _, c := range checkCases {
		t.Run(c.name, func(t *testing.T) {
			js, _ := runCase(t, c, true)
			var rep checkReport
			if err := json.Unmarshal([]byte(js), &rep); err != nil {
				t.Fatalf("unmarshal: %v\n%s", err, js)
			}
			again, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			if string(again)+"\n" != js {
				t.Errorf("round trip changed the JSON:\n got:\n%s\nwant:\n%s", again, js)
			}
			var rep2 checkReport
			if err := json.Unmarshal(again, &rep2); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(rep, rep2) {
				t.Error("second round trip changed the report")
			}
		})
	}
}

// TestFixturesCoverRegistry asserts every non-internal diagnostic code is
// produced by at least one fixture, so no code ships without a pinned
// example (internal codes are unreachable from parsed source: the parser
// rejects their shapes first).
func TestFixturesCoverRegistry(t *testing.T) {
	produced := make(map[string]bool)
	for _, c := range checkCases {
		js, _ := runCase(t, c, true)
		var rep checkReport
		if err := json.Unmarshal([]byte(js), &rep); err != nil {
			t.Fatal(err)
		}
		for _, d := range rep.Diagnostics {
			produced[d.Code] = true
		}
	}
	for code, info := range diag.Registry {
		if info.Internal {
			if produced[code] {
				t.Errorf("code %s is marked Internal but a fixture produces it; drop the flag", code)
			}
			continue
		}
		if !produced[code] {
			t.Errorf("no fixture produces code %s (%s)", code, info.Summary)
		}
	}
	for code := range produced {
		if _, ok := diag.Registry[code]; !ok {
			t.Errorf("fixtures produce unregistered code %s", code)
		}
	}
}
