package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"sepdl"
	"sepdl/internal/diag"
)

// runCheck implements "sepdl check prog.dl [-query q] [-json]": the static
// analysis pass, no database needed. Exit status: 0 clean (info only), 1
// warnings, 2 errors (including usage and unreadable files).
func runCheck(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sepdl check", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		query   = fs.String("query", "", "query to analyze reachability and strategy applicability against")
		jsonOut = fs.Bool("json", false, "emit diagnostics as JSON")
		minSev  = fs.String("min-severity", "info", "lowest severity to report: info|warning|error")
	)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: sepdl check [-query 'q(a, X)?'] [-json] [-min-severity S] prog.dl")
		fs.PrintDefaults()
	}
	// Accept "sepdl check prog.dl -query ..." as well as flags-first: the
	// std flag package stops at the first positional argument, so pull the
	// file out before parsing when it comes first.
	var path string
	if len(args) > 0 && len(args[0]) > 0 && args[0][0] != '-' {
		path, args = args[0], args[1:]
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	switch {
	case path == "" && fs.NArg() == 1:
		path = fs.Arg(0)
	case path != "" && fs.NArg() == 0:
	default:
		fs.Usage()
		return 2
	}
	var min diag.Severity
	switch *minSev {
	case "info":
		min = diag.Info
	case "warning":
		min = diag.Warning
	case "error":
		min = diag.Error
	default:
		fmt.Fprintf(stderr, "sepdl check: unknown -min-severity %q\n", *minSev)
		return 2
	}
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(stderr, "sepdl check:", err)
		return 2
	}
	l := sepdl.CheckSource(string(src), *query)
	shown := l.Filter(min)
	if *jsonOut {
		if err := writeCheckJSON(stdout, path, l, shown); err != nil {
			fmt.Fprintln(stderr, "sepdl check:", err)
			return 2
		}
	} else {
		// Render puts the related sites and explanation on indented
		// continuation lines; the file path prefixes the finding line only.
		for _, d := range shown {
			fmt.Fprintf(stdout, "%s:%s", path, diag.List{d}.Render(""))
		}
		fmt.Fprintf(stdout, "%s: %d error(s), %d warning(s)\n", path, l.Count(diag.Error), l.Count(diag.Warning))
	}
	switch {
	case l.HasErrors():
		return 2
	case l.Count(diag.Warning) > 0:
		return 1
	default:
		return 0
	}
}

// checkReport is the JSON shape of a check run. Diagnostics marshal
// through diag.Diagnostic, so the output round-trips via encoding/json.
type checkReport struct {
	File        string    `json:"file"`
	Diagnostics diag.List `json:"diagnostics"`
	Errors      int       `json:"errors"`
	Warnings    int       `json:"warnings"`
}

func writeCheckJSON(w io.Writer, path string, all, shown diag.List) error {
	if shown == nil {
		shown = diag.List{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(checkReport{
		File:        path,
		Diagnostics: shown,
		Errors:      all.Count(diag.Error),
		Warnings:    all.Count(diag.Warning),
	})
}
