// Quickstart: load the paper's Example 1.1 recursion, ask who tom ends up
// buying for, and let the engine pick the Separable strategy automatically.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"sepdl"
)

func main() {
	e := sepdl.New()

	// Example 1.1: a person buys a product if it is perfect for them, or
	// if a friend or idol bought it.
	err := e.LoadProgram(`
		buys(X, Y) :- friend(X, W) & buys(W, Y).
		buys(X, Y) :- idol(X, W) & buys(W, Y).
		buys(X, Y) :- perfectFor(X, Y).
	`)
	if err != nil {
		log.Fatal(err)
	}
	err = e.LoadFacts(`
		friend(tom, dick).  friend(dick, harry).  friend(sue, tom).
		idol(tom, mary).    idol(mary, harry).
		perfectFor(harry, radio).  perfectFor(dick, tv).  perfectFor(mary, hat).
		perfectFor(alice, car).
	`)
	if err != nil {
		log.Fatal(err)
	}

	// Is this recursion separable? (It is: one equivalence class on the
	// person column, the product column persists.)
	report, separable := e.AnalyzeSeparability("buys")
	fmt.Println(report)
	fmt.Println("separable:", separable)
	fmt.Println()

	res, err := e.Query(`buys(tom, Y)?`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("buys(tom, Y)?  [strategy: %s, %s]\n", res.Stats.Strategy, res.Stats.Duration)
	for _, row := range res.Rows() {
		fmt.Println("  Y =", strings.Join(row, ", "))
	}

	// The other direction — who buys a radio? — selects on the persistent
	// column; still a full selection, still the Separable algorithm.
	res, err = e.Query(`buys(X, radio)?`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbuys(X, radio)?  [strategy: %s]\n", res.Stats.Strategy)
	for _, row := range res.Rows() {
		fmt.Println("  X =", strings.Join(row, ", "))
	}
}
