// Streaming reachability: a network monitor keeps the transitive closure
// of a link graph materialized while links come up and go down. Insertions
// propagate semi-naively and deletions use delete-and-rederive (DRed), so
// each update costs work proportional to the AFFECTED portion of the
// closure: cheap at the network edge, expensive when a backbone link takes
// half the closure with it. The example times both cases against
// recomputing from scratch.
//
//	go run ./examples/streaming [-n 400]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"sepdl"
)

func main() {
	n := flag.Int("n", 400, "number of routers in the backbone chain")
	flag.Parse()

	e := sepdl.New()
	if err := e.LoadProgram(`
		path(X, Y) :- link(X, Y).
		path(X, Y) :- link(X, W) & path(W, Y).
	`); err != nil {
		log.Fatal(err)
	}
	// Backbone chain r1 -> r2 -> ... -> rn plus a redundant bypass around
	// the middle.
	mid := *n / 2
	for i := 1; i < *n; i++ {
		must(e.AddFact("link", r(i), r(i+1)))
	}
	must(e.AddFact("link", r(mid-1), r(mid+1))) // bypass of r(mid)

	start := time.Now()
	v, err := e.Materialize()
	if err != nil {
		log.Fatal(err)
	}
	res, _ := v.Query(`path(r1, Y)?`)
	fmt.Printf("materialized %d routers: %d reachable from r1 (%v)\n\n", *n, res.Len(), time.Since(start))

	// A new edge device joins at the end of the chain.
	start = time.Now()
	if _, err := v.AddFact("link", r(*n), "edge-device"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("link %s -> edge-device added, propagated in %v\n", r(*n), time.Since(start))
	show(v, `path(r1, "edge-device")?`)

	// A leaf link fails: almost nothing depends on it, so DRed is cheap.
	start = time.Now()
	if _, err := v.DeleteFact("link", r(*n), "edge-device"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nleaf link %s -> edge-device failed, DRed maintenance in %v\n", r(*n), time.Since(start))
	show(v, `path(r1, "edge-device")?`)

	// A backbone link fails; the bypass keeps r1 connected, but half the
	// closure must be over-deleted and re-derived — DRed's cost follows
	// the affected set, so a change this central can rival recomputation.
	start = time.Now()
	if _, err := v.DeleteFact("link", r(mid-1), r(mid)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbackbone link %s -> %s failed, DRed maintenance in %v\n", r(mid-1), r(mid), time.Since(start))
	show(v, fmt.Sprintf(`path(r1, %s)?`, r(mid)))   // the bypassed router is cut off
	show(v, fmt.Sprintf(`path(r1, %s)?`, r(mid+1))) // everything past it survives

	// Compare: recomputing from scratch at this size.
	start = time.Now()
	if _, err := e.Query(`path(r1, Y)?`, sepdl.WithStrategy(sepdl.SemiNaive)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n(for scale: one full recomputation takes %v)\n", time.Since(start))
}

func r(i int) string { return fmt.Sprintf("r%d", i) }

func show(v *sepdl.View, query string) {
	res, err := v.Query(query)
	if err != nil {
		log.Fatal(err)
	}
	if res.True() {
		fmt.Printf("  %s  -> true\n", query)
	} else {
		fmt.Printf("  %s  -> false\n", query)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
