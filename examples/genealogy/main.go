// Genealogy: classic deductive-database queries over a family tree. The
// ancestor recursion is separable (one class on the descendant column), so
// "who are alice's ancestors?" runs through the paper's algorithm; the
// same-generation recursion is NOT separable (the up and down parts violate
// condition 4's connectivity), so the engine's Auto strategy falls back to
// Generalized Magic Sets for it — demonstrating the architecture the paper
// proposes, where Separable supplements rather than replaces the general
// algorithm.
//
//	go run ./examples/genealogy
package main

import (
	"fmt"
	"log"
	"strings"

	"sepdl"
)

func main() {
	e := sepdl.New()
	if err := e.LoadProgram(`
		% ancestry: separable (one class on column 1).
		ancestor(X, Y) :- parent(X, Y).
		ancestor(X, Y) :- parent(X, W) & ancestor(W, Y).

		% same generation: not separable (condition 4).
		sg(X, Y) :- sibling(X, Y).
		sg(X, Y) :- parent(U, X) & sg(U, V) & parent(V, Y).
	`); err != nil {
		log.Fatal(err)
	}
	// parent(child, parent) over three generations.
	if err := e.LoadFacts(`
		parent(alice, bob).    parent(alice, carol).
		parent(bob, dave).     parent(bob, erin).
		parent(carol, frank).
		parent(gina, carol).
		parent(dave, heidi).
		sibling(dave, frank).  sibling(frank, dave).
		sibling(bob, carol).   sibling(carol, bob).
	`); err != nil {
		log.Fatal(err)
	}

	for _, pred := range []string{"ancestor", "sg"} {
		report, ok := e.AnalyzeSeparability(pred)
		fmt.Printf("-- %s --\n%s\nseparable: %v\n\n", pred, report, ok)
	}

	queries := []string{
		`ancestor(alice, Y)?`, // all of alice's ancestors
		`ancestor(X, heidi)?`, // everyone descended from heidi... (column 2 selection)
		`sg(alice, Y)?`,       // same generation as alice -> magic sets
	}
	for _, q := range queries {
		why, err := e.Explain(q)
		if err != nil {
			log.Fatal(err)
		}
		res, err := e.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s  [%s]\n  plan: %s\n", q, res.Stats.Strategy, firstLine(why))
		for _, row := range res.Rows() {
			fmt.Println("  ->", strings.Join(row, ", "))
		}
		fmt.Println()
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
