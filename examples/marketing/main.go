// Marketing analytics: the paper's motivating domain at scale. A product
// team wants to know, for one influencer, everything their influence chain
// will end up buying (Example 1.2: products propagate down friendship
// chains and across "will also buy anything cheaper"). The example builds a
// synthetic social graph, runs the same selection under every strategy the
// engine offers, and prints the paper's measure — the largest intermediate
// relation — next to the wall-clock time, so the O(n) vs Ω(n²) gap is
// visible on real output.
//
//	go run ./examples/marketing [-n 2000]
package main

import (
	"flag"
	"fmt"
	"log"

	"sepdl"
)

func main() {
	n := flag.Int("n", 2000, "chain length (people and products)")
	flag.Parse()

	e := sepdl.New()
	if err := e.LoadProgram(`
		buys(X, Y) :- friend(X, W) & buys(W, Y).
		buys(X, Y) :- buys(X, W) & cheaper(Y, W).
		buys(X, Y) :- perfectFor(X, Y).
	`); err != nil {
		log.Fatal(err)
	}

	// A follower chain p1 -> p2 -> ... -> pn, a price ladder g1 < g2 < ...
	// < gn, and one seed recommendation at the end of the chain.
	for i := 1; i < *n; i++ {
		must(e.AddFact("friend", name("p", i), name("p", i+1)))
		must(e.AddFact("cheaper", name("g", i), name("g", i+1)))
	}
	must(e.AddFact("perfectFor", name("p", *n), name("g", *n)))
	fmt.Printf("social graph: %d facts over %d constants\n\n", e.NumFacts(), e.DistinctConstants())

	query := "buys(p1, Y)?"
	fmt.Printf("query: %s\n\n", query)
	fmt.Printf("%-12s %9s %14s %10s %12s\n", "strategy", "answers", "max relation", "size", "time")
	for _, s := range []sepdl.Strategy{sepdl.Separable, sepdl.MagicSets, sepdl.SemiNaive} {
		res, err := e.Query(query, sepdl.WithStrategy(s))
		if err != nil {
			fmt.Printf("%-12s %s\n", s, err)
			continue
		}
		st := res.Stats
		fmt.Printf("%-12s %9d %14s %10d %12s\n", s, res.Len(), st.MaxRelation, st.MaxRelationSize, st.Duration)
	}
	fmt.Println("\nSeparable touches each person and product once (O(n) monadic relations);")
	fmt.Println("Magic Sets materializes every (person, product) combination (Ω(n²)).")
}

func name(prefix string, i int) string { return fmt.Sprintf("%s%d", prefix, i) }

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
