// Access control: recursive group membership plus stratified negation —
// the engine substrate beyond the paper's pure-Horn class. A user can read
// a document if some group they (transitively) belong to was granted
// access and the grant was not revoked; "orphaned" documents have no
// reader at all.
//
// The member recursion is separable (one class on the member column), so
// membership selections compile through the paper's algorithm, while the
// negation-using predicates evaluate stratum by stratum.
//
//	go run ./examples/access
package main

import (
	"fmt"
	"log"
	"strings"

	"sepdl"
)

func main() {
	e := sepdl.New()
	if err := e.LoadProgram(`
		% transitive group membership: separable.
		member(U, G) :- belongs(U, G).
		member(U, G) :- belongs(U, H) & member(H, G).

		% effective grants under revocation: one negation stratum.
		canRead(U, D) :- member(U, G) & grant(G, D) & not revoked(G, D).
		canRead(U, D) :- owner(U, D).

		% documents nobody can read: a second negation stratum.
		readable(D) :- canRead(U, D).
		orphaned(D) :- doc(D) & not readable(D).
	`); err != nil {
		log.Fatal(err)
	}
	if err := e.LoadFacts(`
		belongs(amy, eng).   belongs(bob, eng).   belongs(cara, sales).
		belongs(eng, staff). belongs(sales, staff).
		grant(eng, design).  grant(staff, handbook). grant(sales, forecast).
		revoked(sales, forecast).
		owner(cara, notes).
		doc(design). doc(handbook). doc(forecast). doc(notes). doc(archive).
	`); err != nil {
		log.Fatal(err)
	}

	report, separable := e.AnalyzeSeparability("member")
	fmt.Printf("%s\nseparable: %v\n\n", report, separable)

	show(e, `member(amy, G)?`)       // separable: which groups is amy in?
	show(e, `canRead(amy, D)?`)      // negation stratum 1
	show(e, `canRead(U, forecast)?`) // revoked grant: only via ownership
	show(e, `orphaned(D)?`)          // negation stratum 2
}

func show(e *sepdl.Engine, q string) {
	res, err := e.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s  [strategy: %s]\n", q, res.Stats.Strategy)
	for _, row := range res.Rows() {
		fmt.Println("  ->", strings.Join(row, ", "))
	}
	if res.Len() == 0 {
		fmt.Println("  (no answers)")
	}
	fmt.Println()
}
