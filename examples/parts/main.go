// Bill of materials: a three-column separable recursion with two
// independent equivalence classes, mirroring the paper's Example 2.4. A
// requirement req(Assembly, Site, Spec) propagates two ways:
//
//   - structurally: an assembly requires whatever its subassemblies
//     require, at the same site (class on column 1);
//   - by substitution: if a spec is required, any spec it supersedes is
//     acceptable too (class on column 3);
//   - the site column persists.
//
// Selecting on the assembly column alone is a FULL selection (that class is
// one column wide); the engine also answers partial selections on wider
// classes through the Lemma 2.1 rewrite — both shown below.
//
//	go run ./examples/parts
package main

import (
	"fmt"
	"log"
	"strings"

	"sepdl"
)

func main() {
	e := sepdl.New()
	if err := e.LoadProgram(`
		req(A, S, P) :- subpart(A, B) & req(B, S, P).
		req(A, S, P) :- req(A, S, Q) & supersedes(Q, P).
		req(A, S, P) :- spec(A, S, P).
	`); err != nil {
		log.Fatal(err)
	}
	if err := e.LoadFacts(`
		% engine -> pump -> seal; chassis -> frame
		subpart(engine, pump).  subpart(pump, seal).
		subpart(chassis, frame).
		% base specs by site
		spec(seal,  fab1, gasket_v3).
		spec(pump,  fab2, housing_v1).
		spec(frame, fab1, beam_std).
		% older revisions remain acceptable
		supersedes(gasket_v3, gasket_v2).
		supersedes(gasket_v2, gasket_v1).
		supersedes(housing_v1, housing_v0).
	`); err != nil {
		log.Fatal(err)
	}

	report, ok := e.AnalyzeSeparability("req")
	fmt.Printf("%s\nseparable: %v\n\n", report, ok)

	show(e, `req(engine, S, P)?`)    // full selection: class {1} bound
	show(e, `req(engine, fab1, P)?`) // overconstrained: extra site filter
	show(e, `req(A, S, gasket_v1)?`) // full selection driven by class {3}
	show(e, `req(A, fab2, P)?`)      // persistent-column selection
}

func show(e *sepdl.Engine, q string) {
	res, err := e.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s  [%s, max relation %s(%d)]\n", q, res.Stats.Strategy, res.Stats.MaxRelation, res.Stats.MaxRelationSize)
	fmt.Printf("  columns: %s\n", strings.Join(res.Columns, ", "))
	for _, row := range res.Rows() {
		fmt.Println("  ->", strings.Join(row, ", "))
	}
	fmt.Println()
}
